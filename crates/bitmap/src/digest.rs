//! Compact wire encoding for shipped digests.
//!
//! The whole point of the DCS architecture is that only digests — not raw
//! traffic — cross the network to the analysis centre. This module gives
//! [`Bitmap`] a dense little-endian binary framing (magic, version, length,
//! words) so the compression ratio the paper advertises (three orders of
//! magnitude versus raw traffic) can be measured on actual bytes.

use crate::words::{tail_mask, words_for};
use crate::{Bitmap, WordSource};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::fmt;

/// Magic bytes prefixed to every encoded digest (`b"DCSB"`).
pub const DIGEST_MAGIC: [u8; 4] = *b"DCSB";

const VERSION: u8 = 1;

/// Errors produced when decoding a digest frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The buffer is shorter than the fixed header or declared body.
    Truncated {
        /// Bytes required.
        needed: usize,
        /// Bytes available.
        got: usize,
    },
    /// The frame does not start with [`DIGEST_MAGIC`].
    BadMagic([u8; 4]),
    /// Unknown format version.
    BadVersion(u8),
    /// Bits were set past the declared bitmap length.
    DirtyTail,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Truncated { needed, got } => {
                write!(f, "digest truncated: need {needed} bytes, got {got}")
            }
            DecodeError::BadMagic(m) => write!(f, "bad digest magic {m:02x?}"),
            DecodeError::BadVersion(v) => write!(f, "unsupported digest version {v}"),
            DecodeError::DirtyTail => write!(f, "bits set past declared bitmap length"),
        }
    }
}

impl std::error::Error for DecodeError {}

impl Bitmap {
    /// Encodes the bitmap into a self-describing binary frame.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(13 + self.words().len() * 8);
        buf.put_slice(&DIGEST_MAGIC);
        buf.put_u8(VERSION);
        buf.put_u64_le(self.len() as u64);
        for &w in self.words() {
            buf.put_u64_le(w);
        }
        buf.freeze()
    }

    /// Size in bytes of the encoded frame (header + body).
    pub fn encoded_len(&self) -> usize {
        13 + self.words().len() * 8
    }

    /// Decodes a frame produced by [`Bitmap::encode`].
    pub fn decode(mut buf: &[u8]) -> Result<Bitmap, DecodeError> {
        if buf.len() < 13 {
            return Err(DecodeError::Truncated {
                needed: 13,
                got: buf.len(),
            });
        }
        let mut magic = [0u8; 4];
        buf.copy_to_slice(&mut magic);
        if magic != DIGEST_MAGIC {
            return Err(DecodeError::BadMagic(magic));
        }
        let version = buf.get_u8();
        if version != VERSION {
            return Err(DecodeError::BadVersion(version));
        }
        let len = buf.get_u64_le() as usize;
        let nwords = words_for(len);
        if buf.len() < nwords * 8 {
            return Err(DecodeError::Truncated {
                needed: 13 + nwords * 8,
                got: 13 + buf.len(),
            });
        }
        let mut words = Vec::with_capacity(nwords);
        for _ in 0..nwords {
            words.push(buf.get_u64_le());
        }
        if let Some(&last) = words.last() {
            if last & !tail_mask(len) != 0 {
                return Err(DecodeError::DirtyTail);
            }
        }
        Ok(Bitmap::from_words(len, words))
    }
}

/// A validated, borrowed view over one encoded bitmap frame.
///
/// [`BitmapView::parse`] performs exactly the validation of
/// [`Bitmap::decode`] — magic, version, truncation, tail hygiene — but
/// borrows the word bytes in place instead of copying them into an
/// owned `Vec<u64>`. Words are read with unaligned little-endian loads
/// ([`u64::from_le_bytes`]): wire frames carry variable-length headers,
/// so the word region has no alignment guarantee.
///
/// This is the zero-copy leaf of the streaming ingest path: the fusion
/// transpose reads router digests straight out of the received frame
/// bytes through the [`WordSource`] impl, with no intermediate digest
/// allocation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BitmapView<'a> {
    len: usize,
    /// Exactly `words_for(len) * 8` bytes of little-endian words.
    body: &'a [u8],
}

impl<'a> BitmapView<'a> {
    /// Validates the frame at the front of `buf` and returns a view over
    /// it. Trailing bytes beyond the frame are ignored, exactly as in
    /// [`Bitmap::decode`]; use [`BitmapView::encoded_len`] to advance.
    pub fn parse(buf: &'a [u8]) -> Result<BitmapView<'a>, DecodeError> {
        if buf.len() < 13 {
            return Err(DecodeError::Truncated {
                needed: 13,
                got: buf.len(),
            });
        }
        let mut magic = [0u8; 4];
        magic.copy_from_slice(&buf[..4]);
        if magic != DIGEST_MAGIC {
            return Err(DecodeError::BadMagic(magic));
        }
        let version = buf[4];
        if version != VERSION {
            return Err(DecodeError::BadVersion(version));
        }
        let len = u64::from_le_bytes(buf[5..13].try_into().expect("8-byte slice")) as usize;
        let nwords = words_for(len);
        let Some(body) = buf[13..].get(..nwords * 8) else {
            return Err(DecodeError::Truncated {
                needed: 13 + nwords * 8,
                got: buf.len(),
            });
        };
        let view = BitmapView { len, body };
        if nwords > 0 && view.word(nwords - 1) & !tail_mask(len) != 0 {
            return Err(DecodeError::DirtyTail);
        }
        Ok(view)
    }

    /// Logical length in bits.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the bitmap has zero bits.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Size in bytes of the frame this view covers (header + body).
    #[inline]
    pub fn encoded_len(&self) -> usize {
        13 + self.body.len()
    }

    /// Copies the view into an owned [`Bitmap`].
    pub fn to_bitmap(&self) -> Bitmap {
        let words = (0..self.word_len()).map(|i| self.word(i)).collect();
        Bitmap::from_words(self.len, words)
    }
}

impl WordSource for BitmapView<'_> {
    #[inline]
    fn bit_len(&self) -> usize {
        self.len
    }

    #[inline]
    fn word(&self, i: usize) -> u64 {
        u64::from_le_bytes(
            self.body[i * 8..i * 8 + 8]
                .try_into()
                .expect("8-byte slice"),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let bm = Bitmap::from_indices(1000, [0, 512, 999]);
        let bytes = bm.encode();
        assert_eq!(bytes.len(), bm.encoded_len());
        let back = Bitmap::decode(&bytes).unwrap();
        assert_eq!(bm, back);
    }

    #[test]
    fn roundtrip_empty() {
        let bm = Bitmap::new(0);
        let back = Bitmap::decode(&bm.encode()).unwrap();
        assert_eq!(bm, back);
    }

    #[test]
    fn rejects_bad_magic() {
        let bm = Bitmap::new(64);
        let mut bytes = bm.encode().to_vec();
        bytes[0] = b'X';
        assert!(matches!(
            Bitmap::decode(&bytes),
            Err(DecodeError::BadMagic(_))
        ));
    }

    #[test]
    fn rejects_bad_version() {
        let bm = Bitmap::new(64);
        let mut bytes = bm.encode().to_vec();
        bytes[4] = 99;
        assert_eq!(Bitmap::decode(&bytes), Err(DecodeError::BadVersion(99)));
    }

    #[test]
    fn rejects_truncation() {
        let bm = Bitmap::from_indices(128, [5]);
        let bytes = bm.encode();
        assert!(matches!(
            Bitmap::decode(&bytes[..bytes.len() - 1]),
            Err(DecodeError::Truncated { .. })
        ));
        assert!(matches!(
            Bitmap::decode(&bytes[..4]),
            Err(DecodeError::Truncated { .. })
        ));
    }

    #[test]
    fn rejects_dirty_tail() {
        // len = 4 bits but a word with bit 10 set.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&DIGEST_MAGIC);
        bytes.push(1);
        bytes.extend_from_slice(&4u64.to_le_bytes());
        bytes.extend_from_slice(&(1u64 << 10).to_le_bytes());
        assert_eq!(Bitmap::decode(&bytes), Err(DecodeError::DirtyTail));
    }

    #[test]
    fn header_overhead_is_small() {
        // A 4-Mbit digest must stay ~1000x smaller than 1 second of OC-48
        // traffic (2.4 Gbit): 4 Mbit / 8 + 13 bytes is ~0.52 MB vs 300 MB.
        let bm = Bitmap::new(4 * 1024 * 1024);
        let raw_epoch_bytes = 2_400_000_000u64 / 8;
        let ratio = raw_epoch_bytes as f64 / bm.encoded_len() as f64;
        assert!(ratio > 500.0, "compression ratio {ratio} too small");
    }

    #[test]
    fn view_agrees_with_owned_decode() {
        let bm = Bitmap::from_indices(1000, [0, 63, 64, 512, 999]);
        let bytes = bm.encode();
        let view = BitmapView::parse(&bytes).unwrap();
        assert_eq!(view.len(), bm.len());
        assert_eq!(view.encoded_len(), bm.encoded_len());
        for (i, &w) in bm.words().iter().enumerate() {
            assert_eq!(view.word(i), w, "word {i}");
        }
        assert_eq!(view.to_bitmap(), bm);
    }

    #[test]
    fn view_ignores_trailing_bytes_like_decode() {
        let bm = Bitmap::from_indices(128, [7]);
        let mut bytes = bm.encode().to_vec();
        bytes.extend_from_slice(&[0xAB; 9]);
        let view = BitmapView::parse(&bytes).unwrap();
        assert_eq!(view.encoded_len(), bm.encoded_len());
        assert_eq!(view.to_bitmap(), bm);
    }

    #[test]
    fn view_rejects_what_decode_rejects() {
        let bm = Bitmap::from_indices(128, [5]);
        let bytes = bm.encode();
        for cut in [0, 4, 12, bytes.len() - 1] {
            assert!(matches!(
                BitmapView::parse(&bytes[..cut]),
                Err(DecodeError::Truncated { .. })
            ));
        }
        let mut bad = bytes.to_vec();
        bad[0] = b'X';
        assert!(matches!(
            BitmapView::parse(&bad),
            Err(DecodeError::BadMagic(_))
        ));
        let mut bad = bytes.to_vec();
        bad[4] = 9;
        assert_eq!(BitmapView::parse(&bad), Err(DecodeError::BadVersion(9)));
        // Dirty tail: declare 4 bits but set bit 10.
        let mut dirty = Vec::new();
        dirty.extend_from_slice(&DIGEST_MAGIC);
        dirty.push(1);
        dirty.extend_from_slice(&4u64.to_le_bytes());
        dirty.extend_from_slice(&(1u64 << 10).to_le_bytes());
        assert_eq!(BitmapView::parse(&dirty), Err(DecodeError::DirtyTail));
    }
}
