//! Row-major 0-1 matrix: the fused digest store of the unaligned case.
//!
//! After flow splitting, every monitoring point ships a stack of short
//! arrays (1,024 bits each in the paper's configuration). The analysis
//! centre merges them *vertically* into one giant matrix whose rows it then
//! correlates pairwise (Section IV-B). Rows are stored contiguously so a
//! pairwise sweep walks memory linearly.

use crate::words::{self, tail_mask, words_for};
use crate::{Bitmap, WordSource};
use serde::{Deserialize, Serialize};

/// A row-major bit matrix with fixed row width.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct RowMatrix {
    ncols: usize,
    words_per_row: usize,
    nrows: usize,
    data: Vec<u64>,
}

impl RowMatrix {
    /// Creates an empty matrix whose rows are `ncols` bits wide.
    pub fn new(ncols: usize) -> Self {
        RowMatrix {
            ncols,
            words_per_row: words_for(ncols),
            nrows: 0,
            data: Vec::new(),
        }
    }

    /// Creates an empty matrix with capacity reserved for `rows` rows.
    pub fn with_capacity(ncols: usize, rows: usize) -> Self {
        let words_per_row = words_for(ncols);
        RowMatrix {
            ncols,
            words_per_row,
            nrows: 0,
            data: Vec::with_capacity(rows * words_per_row),
        }
    }

    /// Builds a matrix by stacking equal-length bitmaps as rows.
    ///
    /// # Panics
    /// Panics if the bitmaps do not all have length `ncols`.
    pub fn from_bitmaps<'a>(ncols: usize, rows: impl IntoIterator<Item = &'a Bitmap>) -> Self {
        let mut m = RowMatrix::new(ncols);
        for r in rows {
            m.push_bitmap(r);
        }
        m
    }

    /// Row width in bits.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Words per row in the backing store.
    #[inline]
    pub fn words_per_row(&self) -> usize {
        self.words_per_row
    }

    /// Drops all rows and re-targets the matrix to `ncols`-bit rows,
    /// keeping the backing allocation. The epoch-scratch reuse hook: an
    /// analysis centre resets one matrix per epoch instead of building a
    /// fresh one, so steady-state fusion allocates nothing.
    pub fn reset(&mut self, ncols: usize) {
        self.ncols = ncols;
        self.words_per_row = words_for(ncols);
        self.nrows = 0;
        self.data.clear();
    }

    /// Appends one row read from any word source — an owned [`Bitmap`] or
    /// a borrowed [`BitmapView`](crate::BitmapView) straight off the wire.
    ///
    /// # Panics
    /// Panics if `row.bit_len() != ncols`.
    pub fn push_row_from<S: WordSource>(&mut self, row: &S) {
        assert_eq!(row.bit_len(), self.ncols, "push_row_from: width mismatch");
        self.data.reserve(self.words_per_row);
        for w in 0..self.words_per_row {
            self.data.push(row.word(w));
        }
        self.nrows += 1;
    }

    /// Replaces the matrix contents with `rows`, copying row ranges on
    /// up to `workers` threads across `shards` contiguous row shards.
    ///
    /// Stacking is pure data movement — row `i` of the result is
    /// `rows[i]` regardless of the shard partition — so the result is
    /// bit-identical to pushing each row with
    /// [`RowMatrix::push_row_from`] in order. The backing allocation is
    /// reused as in [`RowMatrix::reset`].
    ///
    /// # Panics
    /// Panics if any row's bit length differs from `ncols`.
    pub fn fill_rows_sharded<S: WordSource + Sync>(
        &mut self,
        ncols: usize,
        rows: &[S],
        shards: usize,
        workers: usize,
    ) {
        self.reset(ncols);
        for r in rows {
            assert_eq!(r.bit_len(), ncols, "fill_rows_sharded: width mismatch");
        }
        let wpr = self.words_per_row;
        self.nrows = rows.len();
        self.data.resize(rows.len() * wpr, 0);
        if shards <= 1 || workers <= 1 || rows.len() <= 1 {
            for (r, row) in rows.iter().enumerate() {
                for w in 0..wpr {
                    self.data[r * wpr + w] = row.word(w);
                }
            }
            return;
        }
        let ranges = dcs_parallel::split_range(rows.len(), shards);
        let mut jobs = Vec::with_capacity(ranges.len());
        let mut rest: &mut [u64] = &mut self.data;
        for range in ranges {
            let (shard, tail) = rest.split_at_mut((range.end - range.start) * wpr);
            rest = tail;
            jobs.push((range, shard));
        }
        dcs_parallel::run_jobs(jobs, workers, |(range, shard)| {
            for (local, r) in range.enumerate() {
                for w in 0..wpr {
                    shard[local * wpr + w] = rows[r].word(w);
                }
            }
        });
    }

    /// [`RowMatrix::fill_rows_sharded`] fused with band-signature
    /// extraction: each shard hashes the rows it just copied while they
    /// are still cache-hot, writing `sigs[r * bands + b]` (resized to
    /// `rows.len() * bands`). Both the matrix and the signatures are
    /// bit-identical to the separate passes
    /// ([`RowMatrix::fill_rows_sharded`] then
    /// [`RowMatrix::band_signatures_into`]) for any shard or worker
    /// count: stacking is pure data movement, and the signature of a row
    /// depends only on that row's words.
    ///
    /// # Panics
    /// Panics if any row's bit length differs from `ncols`, or if
    /// `bands == 0`.
    pub fn fill_rows_sharded_with_sigs<S: WordSource + Sync>(
        &mut self,
        ncols: usize,
        rows: &[S],
        bands: usize,
        sigs: &mut Vec<u64>,
        shards: usize,
        workers: usize,
    ) {
        assert!(bands > 0, "fill_rows_sharded_with_sigs: need a band");
        self.reset(ncols);
        for r in rows {
            assert_eq!(r.bit_len(), ncols, "fill_rows_sharded_with_sigs: width");
        }
        let wpr = self.words_per_row;
        self.nrows = rows.len();
        self.data.resize(rows.len() * wpr, 0);
        sigs.clear();
        sigs.resize(rows.len() * bands, 0);
        if shards <= 1 || workers <= 1 || rows.len() <= 1 {
            for (r, row) in rows.iter().enumerate() {
                for w in 0..wpr {
                    self.data[r * wpr + w] = row.word(w);
                }
            }
            crate::sig::band_signatures_into(&self.data, wpr, rows.len(), bands, sigs);
            return;
        }
        let ranges = dcs_parallel::split_range(rows.len(), shards);
        let mut jobs = Vec::with_capacity(ranges.len());
        let mut rest: &mut [u64] = &mut self.data;
        let mut srest: &mut [u64] = sigs;
        for range in ranges {
            let len = range.end - range.start;
            let (shard, tail) = rest.split_at_mut(len * wpr);
            let (sig_shard, stail) = srest.split_at_mut(len * bands);
            rest = tail;
            srest = stail;
            jobs.push((range, shard, sig_shard));
        }
        dcs_parallel::run_jobs(jobs, workers, |(range, shard, sig_shard)| {
            for (local, r) in range.clone().enumerate() {
                for w in 0..wpr {
                    shard[local * wpr + w] = rows[r].word(w);
                }
            }
            crate::sig::band_signatures_into(shard, wpr, range.end - range.start, bands, sig_shard);
        });
    }

    /// Appends one row given as a bitmap.
    ///
    /// # Panics
    /// Panics if `row.len() != ncols`.
    pub fn push_bitmap(&mut self, row: &Bitmap) {
        assert_eq!(row.len(), self.ncols, "push_bitmap: width mismatch");
        self.data.extend_from_slice(row.words());
        self.nrows += 1;
    }

    /// Appends one row given as raw words.
    ///
    /// # Panics
    /// Panics if the word count is wrong or bits past `ncols` are set.
    pub fn push_words(&mut self, row: &[u64]) {
        assert_eq!(row.len(), self.words_per_row, "push_words: word count");
        if let Some(last) = row.last() {
            assert_eq!(
                last & !tail_mask(self.ncols),
                0,
                "push_words: bits set past row width"
            );
        }
        self.data.extend_from_slice(row);
        self.nrows += 1;
    }

    /// Appends all rows of `other` below the rows of `self` — the paper's
    /// "merged vertically" step when digests arrive from many routers.
    ///
    /// # Panics
    /// Panics if the widths differ.
    pub fn vstack(&mut self, other: &RowMatrix) {
        assert_eq!(self.ncols, other.ncols, "vstack: width mismatch");
        self.data.extend_from_slice(&other.data);
        self.nrows += other.nrows;
    }

    /// Word slice of row `i`.
    ///
    /// # Panics
    /// Panics if `i >= nrows`.
    #[inline]
    pub fn row(&self, i: usize) -> &[u64] {
        assert!(i < self.nrows, "row {i} out of range {}", self.nrows);
        &self.data[i * self.words_per_row..(i + 1) * self.words_per_row]
    }

    /// Number of 1's in row `i`.
    #[inline]
    pub fn row_weight(&self, i: usize) -> u32 {
        words::weight(self.row(i))
    }

    /// Weights of all rows.
    pub fn row_weights(&self) -> Vec<u32> {
        (0..self.nrows).map(|i| self.row_weight(i)).collect()
    }

    /// Number of columns where rows `i` and `j` are both 1.
    #[inline]
    pub fn common_ones(&self, i: usize, j: usize) -> u32 {
        words::and_weight(self.row(i), self.row(j))
    }

    /// Reads the bit at (`row`, `col`).
    ///
    /// # Panics
    /// Panics if out of range.
    pub fn get(&self, row: usize, col: usize) -> bool {
        assert!(col < self.ncols, "col {col} out of range {}", self.ncols);
        self.row(row)[col / 64] >> (col % 64) & 1 == 1
    }

    /// The packed backing words, row-major (`words_per_row` words per
    /// row). Exposed for kernels that stream several rows at once — the
    /// band-signature extraction of [`crate::sig`] and sharded builds
    /// that slice disjoint row ranges.
    #[inline]
    pub fn as_words(&self) -> &[u64] {
        &self.data
    }

    /// Fills `out[r * bands + b]` with the band-`b` signature of row `r`
    /// (see [`crate::sig`]), resizing `out` to `nrows * bands`.
    pub fn band_signatures_into(&self, bands: usize, out: &mut Vec<u64>) {
        out.clear();
        out.resize(self.nrows * bands, 0);
        crate::sig::band_signatures_into(&self.data, self.words_per_row, self.nrows, bands, out);
    }

    /// Approximate heap footprint in bytes (digest-size accounting).
    pub fn byte_size(&self) -> usize {
        self.data.len() * 8
    }

    /// Capacity of the backing word store — diagnostic hook for
    /// steady-state reuse tests (a reused matrix must not regrow).
    pub fn word_capacity(&self) -> usize {
        self.data.capacity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RowMatrix {
        let a = Bitmap::from_indices(100, [0, 1, 2, 99]);
        let b = Bitmap::from_indices(100, [1, 2, 3]);
        let c = Bitmap::from_indices(100, [99]);
        RowMatrix::from_bitmaps(100, [&a, &b, &c])
    }

    #[test]
    fn dimensions() {
        let m = sample();
        assert_eq!(m.nrows(), 3);
        assert_eq!(m.ncols(), 100);
        assert_eq!(m.words_per_row(), 2);
    }

    #[test]
    fn row_weights_and_common_ones() {
        let m = sample();
        assert_eq!(m.row_weights(), vec![4, 3, 1]);
        assert_eq!(m.common_ones(0, 1), 2);
        assert_eq!(m.common_ones(0, 2), 1);
        assert_eq!(m.common_ones(1, 2), 0);
    }

    #[test]
    fn get_reads_bits() {
        let m = sample();
        assert!(m.get(0, 99));
        assert!(!m.get(1, 0));
        assert!(m.get(1, 3));
    }

    #[test]
    fn vstack_appends() {
        let mut m = sample();
        let n = sample();
        m.vstack(&n);
        assert_eq!(m.nrows(), 6);
        assert_eq!(m.row(3), n.row(0));
        assert_eq!(m.common_ones(0, 3), 4);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn vstack_width_mismatch_panics() {
        let mut m = RowMatrix::new(64);
        m.vstack(&RowMatrix::new(65));
    }

    #[test]
    fn push_words_validates_tail() {
        let mut m = RowMatrix::new(4);
        m.push_words(&[0b1010]);
        assert_eq!(m.row_weight(0), 2);
    }

    #[test]
    #[should_panic(expected = "past row width")]
    fn push_words_dirty_tail_panics() {
        let mut m = RowMatrix::new(4);
        m.push_words(&[0b10000]);
    }

    #[test]
    fn byte_size_tracks_rows() {
        let m = sample();
        assert_eq!(m.byte_size(), 3 * 2 * 8);
    }

    #[test]
    fn push_row_from_matches_push_bitmap() {
        let rows = [
            Bitmap::from_indices(100, [0, 1, 2, 99]),
            Bitmap::from_indices(100, [63, 64]),
        ];
        let mut a = RowMatrix::new(100);
        let mut b = RowMatrix::new(100);
        for r in &rows {
            a.push_bitmap(r);
            b.push_row_from(r);
        }
        assert_eq!(a, b);
    }

    #[test]
    fn fill_rows_sharded_matches_sequential_push_for_any_shard_count() {
        let rows: Vec<Bitmap> = (0..13)
            .map(|i| Bitmap::from_indices(130, [i, i + 7, 129 - i]))
            .collect();
        let mut expect = RowMatrix::new(130);
        for r in &rows {
            expect.push_bitmap(r);
        }
        // 10_000 and 1<<20 shards on a 130-column matrix: the plan must
        // degrade to ≤ 3 word-tile ranges, never hand a worker an empty
        // (zero-width split_at_mut) slice.
        for shards in [1usize, 2, 3, 8, 32, 10_000, 1 << 20] {
            let mut m = RowMatrix::new(0);
            m.fill_rows_sharded(130, &rows, shards, 4);
            assert_eq!(m, expect, "shards {shards}");
        }
    }

    #[test]
    fn fused_fill_with_sigs_matches_separate_passes_for_any_shard_count() {
        let rows: Vec<Bitmap> = (0..13)
            .map(|i| Bitmap::from_indices(300, [i, i + 7, 5 * i + 2, 299 - i]))
            .collect();
        let mut expect = RowMatrix::new(0);
        expect.fill_rows_sharded(300, &rows, 1, 1);
        for bands in [1usize, 3, 8] {
            let mut expect_sigs = Vec::new();
            expect.band_signatures_into(bands, &mut expect_sigs);
            for shards in [1usize, 2, 3, 8, 10_000] {
                for workers in [1usize, 4] {
                    let mut m = RowMatrix::new(0);
                    let mut sigs = Vec::new();
                    m.fill_rows_sharded_with_sigs(300, &rows, bands, &mut sigs, shards, workers);
                    assert_eq!(m, expect, "bands {bands} shards {shards}");
                    assert_eq!(
                        sigs, expect_sigs,
                        "bands {bands} shards {shards} workers {workers}: sigs differ"
                    );
                }
            }
        }
    }

    #[test]
    fn reset_keeps_capacity_across_epochs() {
        let mut m = sample();
        let cap = m.word_capacity();
        assert!(cap >= 6);
        m.reset(100);
        assert_eq!(m.nrows(), 0);
        assert_eq!(m.word_capacity(), cap);
        m.push_bitmap(&Bitmap::from_indices(100, [7]));
        assert_eq!(m.word_capacity(), cap, "refill within capacity regrew");
        // Re-targeting to a narrower width also keeps the allocation.
        m.reset(64);
        assert_eq!(m.words_per_row(), 1);
        assert_eq!(m.word_capacity(), cap);
    }
}
