//! AVX2 vector popcount kernels (Mula's nibble-lookup algorithm).
//!
//! Each 256-bit lane is split into nibbles, every nibble is mapped
//! through a 16-entry popcount table with `_mm256_shuffle_epi8`, and the
//! per-byte counts are folded into four `u64` lanes with
//! `_mm256_sad_epu8`. The byte accumulator is flushed every
//! [`SAD_EVERY`] vectors — each vector adds at most 8 to a byte lane, so
//! 31 × 8 = 248 stays under the `u8` ceiling.
//!
//! This is the only module in the crate allowed to use `unsafe`: the
//! intrinsics require it. Every public entry point re-checks AVX2
//! availability at runtime (a cached atomic load inside `std`), so the
//! functions exposed to the dispatcher are safe — the
//! `#[target_feature]` bodies are unreachable on hosts without the
//! feature, even if [`force_kernel`](crate::words::force_kernel) is
//! misused.
//!
//! Loads are `_mm256_loadu_si256` (no alignment requirement): callers
//! hand in ordinary `&[u64]` slices with no alignment promise beyond 8.

use core::arch::x86_64::*;

/// Vectors accumulated into byte counters between `sad` flushes.
const SAD_EVERY: usize = 31;

/// Below this many words the straight-line scalar kernel wins; the
/// dispatcher in [`crate::words`] short-circuits before calling here.
pub(crate) const AVX2_MIN_WORDS: usize = 8;

macro_rules! assert_avx2 {
    () => {
        assert!(
            std::arch::is_x86_feature_detected!("avx2"),
            "AVX2 kernel invoked on a host without AVX2 (force_kernel misuse?)"
        )
    };
}

/// Population count of a word slice.
pub(crate) fn weight(words: &[u64]) -> u32 {
    assert_avx2!();
    // SAFETY: AVX2 availability verified above.
    unsafe { weight_impl(words) }
}

/// Population count of `a & b` (equal-length slices).
pub(crate) fn and_weight(a: &[u64], b: &[u64]) -> u32 {
    debug_assert_eq!(a.len(), b.len(), "and_weight: length mismatch");
    assert_avx2!();
    // SAFETY: AVX2 availability verified above.
    unsafe { binary_weight_impl::<OP_AND>(a, b) }
}

/// Population count of `a | b` (equal-length slices).
pub(crate) fn or_weight(a: &[u64], b: &[u64]) -> u32 {
    debug_assert_eq!(a.len(), b.len(), "or_weight: length mismatch");
    assert_avx2!();
    // SAFETY: AVX2 availability verified above.
    unsafe { binary_weight_impl::<OP_OR>(a, b) }
}

const OP_AND: u8 = 0;
const OP_OR: u8 = 1;

/// Per-byte popcount of a 256-bit vector: nibble-split + table shuffle.
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn popcount_epi8(v: __m256i) -> __m256i {
    let table = _mm256_setr_epi8(
        0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4, // low 128-bit lane
        0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4, // high 128-bit lane
    );
    let low_mask = _mm256_set1_epi8(0x0f);
    let lo = _mm256_and_si256(v, low_mask);
    let hi = _mm256_and_si256(_mm256_srli_epi16::<4>(v), low_mask);
    _mm256_add_epi8(
        _mm256_shuffle_epi8(table, lo),
        _mm256_shuffle_epi8(table, hi),
    )
}

/// Sum of the four `u64` lanes of an accumulator.
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn hsum_epi64(acc: __m256i) -> u64 {
    let mut lanes = [0u64; 4];
    _mm256_storeu_si256(lanes.as_mut_ptr().cast(), acc);
    lanes.iter().sum()
}

#[target_feature(enable = "avx2")]
unsafe fn weight_impl(words: &[u64]) -> u32 {
    let ptr = words.as_ptr().cast::<__m256i>();
    let nvec = words.len() / 4;
    let zero = _mm256_setzero_si256();
    let mut acc = zero;
    let mut i = 0;
    while i < nvec {
        let run = (nvec - i).min(SAD_EVERY);
        let mut bytes = zero;
        for k in 0..run {
            let v = _mm256_loadu_si256(ptr.add(i + k));
            bytes = _mm256_add_epi8(bytes, popcount_epi8(v));
        }
        acc = _mm256_add_epi64(acc, _mm256_sad_epu8(bytes, zero));
        i += run;
    }
    let mut total = hsum_epi64(acc) as u32;
    for &w in &words[4 * nvec..] {
        total += w.count_ones();
    }
    total
}

/// Band-signature extraction: four consecutive rows per iteration, the
/// same word position of each row gathered into one vector and pushed
/// through the vectorised [`mix_word`](crate::sig::mix_word) finalizer.
/// Bit-identical to the scalar kernel because the per-word hashes are
/// XOR-combined (order-free) and the vector multiply emulation computes
/// the exact low 64 bits.
pub(crate) fn band_signatures(
    data: &[u64],
    words_per_row: usize,
    nrows: usize,
    bands: usize,
    out: &mut [u64],
) {
    assert_avx2!();
    let quads = nrows / 4;
    if quads > 0 {
        // SAFETY: AVX2 availability verified above; gather indices stay
        // inside `data` because row r < nrows and word j < words_per_row.
        unsafe { band_signatures_impl(data, words_per_row, quads, bands, out) };
    }
    let r = quads * 4;
    if r < nrows {
        crate::sig::band_signatures_scalar(
            &data[r * words_per_row..],
            words_per_row,
            nrows - r,
            bands,
            &mut out[r * bands..],
        );
    }
}

/// Exact low-64-bit product of each lane of `a` with the broadcast
/// constant `b`: `lo64(a*b) = lo(a)·lo(b) + ((lo(a)·hi(b) + hi(a)·lo(b)) << 32)`
/// built from 32×32→64 `_mm256_mul_epu32` multiplies.
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn mullo_epi64(a: __m256i, b: __m256i) -> __m256i {
    let lo_lo = _mm256_mul_epu32(a, b);
    let a_hi = _mm256_srli_epi64::<32>(a);
    let b_hi = _mm256_srli_epi64::<32>(b);
    let cross = _mm256_add_epi64(_mm256_mul_epu32(a_hi, b), _mm256_mul_epu32(a, b_hi));
    _mm256_add_epi64(lo_lo, _mm256_slli_epi64::<32>(cross))
}

/// Vector form of [`crate::sig::mix_word`]'s splitmix64 finalizer (the
/// position term is pre-mixed into `v` by the caller).
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn mix_finalize(v: __m256i) -> __m256i {
    let c1 = _mm256_set1_epi64x(0xBF58_476D_1CE4_E5B9_u64 as i64);
    let c2 = _mm256_set1_epi64x(0x94D0_49BB_1331_11EB_u64 as i64);
    let z = mullo_epi64(_mm256_xor_si256(v, _mm256_srli_epi64::<30>(v)), c1);
    let z = mullo_epi64(_mm256_xor_si256(z, _mm256_srli_epi64::<27>(z)), c2);
    _mm256_xor_si256(z, _mm256_srli_epi64::<31>(z))
}

#[target_feature(enable = "avx2")]
unsafe fn band_signatures_impl(
    data: &[u64],
    words_per_row: usize,
    quads: usize,
    bands: usize,
    out: &mut [u64],
) {
    let stream = _mm256_set1_epi64x(0xD1B5_4A32_D192_ED03_u64 as i64);
    let gamma = 0x9E37_79B9_7F4A_7C15_u64;
    for q in 0..quads {
        let r0 = q * 4;
        let base = data.as_ptr().add(r0 * words_per_row).cast::<i64>();
        let row_stride = _mm256_setr_epi64x(
            0,
            words_per_row as i64,
            2 * words_per_row as i64,
            3 * words_per_row as i64,
        );
        for b in 0..bands {
            let (s, e) = crate::sig::band_bounds(words_per_row, bands, b);
            let mut acc = _mm256_setzero_si256();
            for j in s..e {
                let idx = _mm256_add_epi64(row_stride, _mm256_set1_epi64x(j as i64));
                let words = _mm256_i64gather_epi64::<8>(base, idx);
                let pos = _mm256_set1_epi64x((j as u64).wrapping_mul(gamma) as i64);
                let seeded = _mm256_xor_si256(_mm256_xor_si256(words, pos), stream);
                acc = _mm256_xor_si256(acc, mix_finalize(seeded));
            }
            let mut lanes = [0u64; 4];
            _mm256_storeu_si256(lanes.as_mut_ptr().cast(), acc);
            for (lane, &v) in lanes.iter().enumerate() {
                out[(r0 + lane) * bands + b] = v;
            }
        }
    }
}

#[target_feature(enable = "avx2")]
unsafe fn binary_weight_impl<const OP: u8>(a: &[u64], b: &[u64]) -> u32 {
    let pa = a.as_ptr().cast::<__m256i>();
    let pb = b.as_ptr().cast::<__m256i>();
    let nvec = a.len() / 4;
    let zero = _mm256_setzero_si256();
    let mut acc = zero;
    let mut i = 0;
    while i < nvec {
        let run = (nvec - i).min(SAD_EVERY);
        let mut bytes = zero;
        for k in 0..run {
            let x = _mm256_loadu_si256(pa.add(i + k));
            let y = _mm256_loadu_si256(pb.add(i + k));
            let v = if OP == OP_AND {
                _mm256_and_si256(x, y)
            } else {
                _mm256_or_si256(x, y)
            };
            bytes = _mm256_add_epi8(bytes, popcount_epi8(v));
        }
        acc = _mm256_add_epi64(acc, _mm256_sad_epu8(bytes, zero));
        i += run;
    }
    let mut total = hsum_epi64(acc) as u32;
    for (&x, &y) in a[4 * nvec..].iter().zip(&b[4 * nvec..]) {
        let v = if OP == OP_AND { x & y } else { x | y };
        total += v.count_ones();
    }
    total
}
