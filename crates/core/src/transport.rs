//! Chunked transport envelope for digest bundles — the DCSR wire format's
//! delivery layer.
//!
//! A paper-scale digest bundle is ~4 Mbit; no real measurement plane
//! ships that as one indivisible datagram. This module splits an encoded
//! [`RouterDigest`](crate::monitor::RouterDigest) bundle into bounded
//! **chunk frames**, each self-describing and independently checkable:
//!
//! ```text
//!  ┌───────┬───┬───────────┬──────────┬─────┬───────┬─────────────┬─────────┬───────┐
//!  │ magic │ v │ router id │ epoch id │ seq │ total │ payload len │ payload │ CRC32 │
//!  │ DCSC  │ 1 │    u64    │   u64    │ u32 │  u32  │     u32     │  bytes  │  u32  │
//!  └───────┴───┴───────────┴──────────┴─────┴───────┴─────────────┴─────────┴───────┘
//! ```
//!
//! All integers are little-endian. The CRC-32 trailer
//! ([`dcs_hash::crc32()`]) covers header *and* payload, so truncation,
//! reordering corruption and bit-flips are detected before a single
//! payload byte reaches the reassembly buffer. Every declared length is
//! checked against the remaining buffer and against hard caps
//! ([`MAX_CHUNK_PAYLOAD`], [`MAX_CHUNKS`]) before any allocation, in the
//! same spirit as `dcs-collect::wire`'s count caps.
//!
//! Reassembly, acknowledgement and retransmission live one layer up, in
//! [`crate::session`].

use dcs_hash::crc32::crc32;
use std::fmt;

/// Magic for chunk frames (`b"DCSC"`).
pub const CHUNK_MAGIC: [u8; 4] = *b"DCSC";

/// Chunk envelope version.
pub const CHUNK_VERSION: u8 = 1;

/// Fixed header bytes before the payload: magic + version + router id +
/// epoch id + seq + total + payload length.
pub const CHUNK_HEADER: usize = 4 + 1 + 8 + 8 + 4 + 4 + 4;

/// Trailer bytes after the payload (the CRC-32).
pub const CHUNK_TRAILER: usize = 4;

/// Hard cap on one chunk's payload. A declared length above this is
/// rejected before allocation, whatever the buffer claims.
pub const MAX_CHUNK_PAYLOAD: usize = 64 * 1024;

/// Hard cap on `total` — the declared chunk count of one bundle. Caps
/// reassembly-buffer allocation at the session layer: a hostile `total`
/// cannot reserve more than this many slots.
pub const MAX_CHUNKS: u32 = 1 << 16;

/// Datagram-safe payload size: the whole encoded frame (header +
/// payload + CRC trailer) fits in 1400 bytes, clearing the common
/// 1500-byte Ethernet MTU with room for IP/UDP headers and tunnel
/// overhead. The socket path defaults to this; in-memory and TCP paths
/// may still use payloads up to [`MAX_CHUNK_PAYLOAD`].
pub const DATAGRAM_SAFE_PAYLOAD: usize = 1400 - CHUNK_HEADER - CHUNK_TRAILER;

/// Errors from decoding chunk frames.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChunkError {
    /// Buffer too short for the fixed header, declared payload or trailer.
    Truncated,
    /// Unexpected magic bytes.
    BadMagic([u8; 4]),
    /// Unsupported envelope version.
    BadVersion(u8),
    /// The CRC-32 trailer disagrees with the received header + payload.
    ChecksumMismatch {
        /// Checksum carried in the trailer.
        declared: u32,
        /// Checksum of the bytes as received.
        computed: u32,
    },
    /// Structurally impossible field (zero total, seq ≥ total, payload or
    /// total beyond the hard caps).
    Malformed(&'static str),
}

impl fmt::Display for ChunkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChunkError::Truncated => write!(f, "chunk frame truncated"),
            ChunkError::BadMagic(m) => write!(f, "bad chunk magic {m:02x?}"),
            ChunkError::BadVersion(v) => write!(f, "unsupported chunk version {v}"),
            ChunkError::ChecksumMismatch { declared, computed } => write!(
                f,
                "chunk checksum mismatch: trailer {declared:#010x}, computed {computed:#010x}"
            ),
            ChunkError::Malformed(what) => write!(f, "malformed chunk frame: {what}"),
        }
    }
}

impl std::error::Error for ChunkError {}

/// One decoded chunk frame, payload borrowed from the receive buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkFrame<'a> {
    /// The shipping router's index.
    pub router_id: u64,
    /// The epoch the chunked bundle belongs to.
    pub epoch_id: u64,
    /// This chunk's position, `0 ≤ seq < total`.
    pub seq: u32,
    /// Total chunks in the bundle.
    pub total: u32,
    /// This chunk's slice of the encoded bundle.
    pub payload: &'a [u8],
}

impl<'a> ChunkFrame<'a> {
    /// Encodes one chunk frame (header, payload, CRC-32 trailer).
    ///
    /// # Panics
    /// Panics if `payload` exceeds [`MAX_CHUNK_PAYLOAD`], `total` exceeds
    /// [`MAX_CHUNKS`], `total` is zero or `seq ≥ total` — the encoder is
    /// only fed by [`chunk_bundle`] and the resend path, which never
    /// construct such frames.
    pub fn encode(&self) -> Vec<u8> {
        assert!(
            self.payload.len() <= MAX_CHUNK_PAYLOAD,
            "chunk payload over cap"
        );
        assert!(
            self.total >= 1 && self.total <= MAX_CHUNKS,
            "chunk total out of range"
        );
        assert!(self.seq < self.total, "chunk seq beyond total");
        let mut buf = Vec::with_capacity(CHUNK_HEADER + self.payload.len() + CHUNK_TRAILER);
        buf.extend_from_slice(&CHUNK_MAGIC);
        buf.push(CHUNK_VERSION);
        buf.extend_from_slice(&self.router_id.to_le_bytes());
        buf.extend_from_slice(&self.epoch_id.to_le_bytes());
        buf.extend_from_slice(&self.seq.to_le_bytes());
        buf.extend_from_slice(&self.total.to_le_bytes());
        buf.extend_from_slice(&(self.payload.len() as u32).to_le_bytes());
        buf.extend_from_slice(self.payload);
        let crc = crc32(&buf);
        buf.extend_from_slice(&crc.to_le_bytes());
        buf
    }

    /// Decodes the chunk frame at the front of `buf`, returning the frame
    /// (payload borrowed) and the bytes consumed. Never panics on
    /// arbitrary input, and rejects every declared length against the
    /// remaining buffer and the hard caps *before* touching the payload.
    pub fn decode(buf: &'a [u8]) -> Result<(ChunkFrame<'a>, usize), ChunkError> {
        if buf.len() < CHUNK_HEADER + CHUNK_TRAILER {
            return Err(ChunkError::Truncated);
        }
        if buf[..4] != CHUNK_MAGIC {
            let mut m = [0u8; 4];
            m.copy_from_slice(&buf[..4]);
            return Err(ChunkError::BadMagic(m));
        }
        if buf[4] != CHUNK_VERSION {
            return Err(ChunkError::BadVersion(buf[4]));
        }
        let router_id = u64::from_le_bytes(buf[5..13].try_into().expect("8-byte slice"));
        let epoch_id = u64::from_le_bytes(buf[13..21].try_into().expect("8-byte slice"));
        let seq = u32::from_le_bytes(buf[21..25].try_into().expect("4-byte slice"));
        let total = u32::from_le_bytes(buf[25..29].try_into().expect("4-byte slice"));
        let payload_len =
            u32::from_le_bytes(buf[29..33].try_into().expect("4-byte slice")) as usize;
        if payload_len > MAX_CHUNK_PAYLOAD {
            return Err(ChunkError::Malformed("payload length over cap"));
        }
        let used = CHUNK_HEADER + payload_len + CHUNK_TRAILER;
        if buf.len() < used {
            return Err(ChunkError::Truncated);
        }
        let body = &buf[..CHUNK_HEADER + payload_len];
        let declared = u32::from_le_bytes(
            buf[CHUNK_HEADER + payload_len..used]
                .try_into()
                .expect("4-byte slice"),
        );
        let computed = crc32(body);
        if declared != computed {
            return Err(ChunkError::ChecksumMismatch { declared, computed });
        }
        if total == 0 {
            return Err(ChunkError::Malformed("total = 0"));
        }
        if total > MAX_CHUNKS {
            return Err(ChunkError::Malformed("total over cap"));
        }
        if seq >= total {
            return Err(ChunkError::Malformed("seq beyond total"));
        }
        Ok((
            ChunkFrame {
                router_id,
                epoch_id,
                seq,
                total,
                payload: &buf[CHUNK_HEADER..CHUNK_HEADER + payload_len],
            },
            used,
        ))
    }

    /// Best-effort header salvage of a frame whose CRC failed: if the
    /// magic and version still parse, returns the (untrusted) router id,
    /// epoch id and seq, letting the session layer NACK the chunk early
    /// instead of waiting out a full retransmit timer. Corruption in
    /// these very fields routes the NACK nowhere — which is exactly the
    /// timer fallback's job.
    pub fn salvage_header(buf: &[u8]) -> Option<(u64, u64, u32)> {
        if buf.len() < CHUNK_HEADER || buf[..4] != CHUNK_MAGIC || buf[4] != CHUNK_VERSION {
            return None;
        }
        let router_id = u64::from_le_bytes(buf[5..13].try_into().expect("8-byte slice"));
        let epoch_id = u64::from_le_bytes(buf[13..21].try_into().expect("8-byte slice"));
        let seq = u32::from_le_bytes(buf[21..25].try_into().expect("4-byte slice"));
        Some((router_id, epoch_id, seq))
    }
}

/// Splits an encoded bundle into chunk frames of at most `max_payload`
/// payload bytes each, ready to ship. An empty bundle still produces one
/// (empty) chunk so the receiver can distinguish "shipped nothing" from
/// "nothing arrived".
///
/// # Panics
/// Panics if `max_payload` is zero or exceeds [`MAX_CHUNK_PAYLOAD`], or
/// if the bundle needs more than [`MAX_CHUNKS`] chunks.
pub fn chunk_bundle(
    router_id: u64,
    epoch_id: u64,
    bundle: &[u8],
    max_payload: usize,
) -> Vec<Vec<u8>> {
    assert!(
        (1..=MAX_CHUNK_PAYLOAD).contains(&max_payload),
        "chunk payload size out of range"
    );
    let total = bundle.len().div_ceil(max_payload).max(1);
    assert!(total <= MAX_CHUNKS as usize, "bundle needs too many chunks");
    (0..total)
        .map(|seq| {
            let start = seq * max_payload;
            let end = (start + max_payload).min(bundle.len());
            ChunkFrame {
                router_id,
                epoch_id,
                seq: seq as u32,
                total: total as u32,
                payload: &bundle[start..end],
            }
            .encode()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_single_chunk() {
        let payload = b"digest bundle bytes";
        let frames = chunk_bundle(7, 3, payload, 1024);
        assert_eq!(frames.len(), 1);
        let (f, used) = ChunkFrame::decode(&frames[0]).unwrap();
        assert_eq!(used, frames[0].len());
        assert_eq!(f.router_id, 7);
        assert_eq!(f.epoch_id, 3);
        assert_eq!(f.seq, 0);
        assert_eq!(f.total, 1);
        assert_eq!(f.payload, payload);
    }

    #[test]
    fn chunking_covers_the_bundle_exactly() {
        let bundle: Vec<u8> = (0..2_500u32).map(|i| i as u8).collect();
        let frames = chunk_bundle(1, 9, &bundle, 512);
        assert_eq!(frames.len(), 5);
        let mut reassembled = Vec::new();
        for (i, frame) in frames.iter().enumerate() {
            let (f, _) = ChunkFrame::decode(frame).unwrap();
            assert_eq!(f.seq as usize, i);
            assert_eq!(f.total, 5);
            reassembled.extend_from_slice(f.payload);
        }
        assert_eq!(reassembled, bundle);
    }

    #[test]
    fn empty_bundle_still_ships_one_chunk() {
        let frames = chunk_bundle(0, 0, &[], 512);
        assert_eq!(frames.len(), 1);
        let (f, _) = ChunkFrame::decode(&frames[0]).unwrap();
        assert_eq!(f.total, 1);
        assert!(f.payload.is_empty());
    }

    #[test]
    fn every_single_bit_flip_is_detected() {
        let frames = chunk_bundle(3, 1, b"sensitive digest data", 64);
        let wire = &frames[0];
        for byte in 0..wire.len() {
            for bit in 0..8 {
                let mut mangled = wire.clone();
                mangled[byte] ^= 1 << bit;
                // A flip anywhere (header, payload, trailer) must be a
                // typed error; a flip in the trailer itself mismatches
                // against the recomputed CRC.
                assert!(
                    ChunkFrame::decode(&mangled).is_err(),
                    "flip {byte}:{bit} decoded"
                );
            }
        }
    }

    #[test]
    fn every_truncation_is_detected() {
        let frames = chunk_bundle(3, 1, &[0xAA; 300], 128);
        for frame in &frames {
            for cut in 0..frame.len() {
                assert!(
                    ChunkFrame::decode(&frame[..cut]).is_err(),
                    "cut {cut} decoded"
                );
            }
        }
    }

    #[test]
    fn trailing_bytes_are_not_consumed() {
        let mut stream = Vec::new();
        for frame in chunk_bundle(2, 4, &[7u8; 700], 256) {
            stream.extend_from_slice(&frame);
        }
        let mut off = 0;
        let mut seqs = Vec::new();
        while off < stream.len() {
            let (f, used) = ChunkFrame::decode(&stream[off..]).unwrap();
            seqs.push(f.seq);
            off += used;
        }
        assert_eq!(seqs, vec![0, 1, 2]);
    }

    #[test]
    fn hostile_lengths_rejected_before_allocation() {
        let mut frame = chunk_bundle(1, 1, &[1u8; 100], 64)[0].clone();
        // Declare a payload far beyond the cap.
        frame[29..33].copy_from_slice(&(u32::MAX).to_le_bytes());
        assert_eq!(
            ChunkFrame::decode(&frame),
            Err(ChunkError::Malformed("payload length over cap"))
        );
        // Declare a payload inside the cap but beyond the buffer.
        let mut frame = chunk_bundle(1, 1, &[1u8; 100], 64)[0].clone();
        frame[29..33].copy_from_slice(&(MAX_CHUNK_PAYLOAD as u32).to_le_bytes());
        assert_eq!(ChunkFrame::decode(&frame), Err(ChunkError::Truncated));
    }

    #[test]
    fn hostile_total_rejected() {
        // Build a frame with total over the cap by hand (encode asserts).
        let mut frame = chunk_bundle(1, 1, b"x", 64)[0].clone();
        frame[25..29].copy_from_slice(&(MAX_CHUNKS + 1).to_le_bytes());
        // Fix the CRC so the structural check is what fires.
        let body_len = frame.len() - CHUNK_TRAILER;
        let crc = dcs_hash::crc32::crc32(&frame[..body_len]);
        frame[body_len..].copy_from_slice(&crc.to_le_bytes());
        assert_eq!(
            ChunkFrame::decode(&frame),
            Err(ChunkError::Malformed("total over cap"))
        );
    }

    #[test]
    fn wrong_magic_and_version_are_typed() {
        let frame = chunk_bundle(1, 1, b"x", 64)[0].clone();
        let mut bad = frame.clone();
        bad[0] = b'X';
        assert!(matches!(
            ChunkFrame::decode(&bad),
            Err(ChunkError::BadMagic(_))
        ));
        let mut bad = frame;
        bad[4] = 9;
        assert!(matches!(
            ChunkFrame::decode(&bad),
            Err(ChunkError::BadVersion(9))
        ));
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(48))]

        /// Chunking round-trips bundles at both regimes: the in-memory
        /// default (≤64 KiB payloads) and the datagram-safe socket
        /// default. On the socket path every encoded frame must also fit
        /// a 1400-byte datagram budget.
        #[test]
        fn chunking_roundtrips_at_both_payload_sizes(
            router_id in proptest::prelude::any::<u64>(),
            epoch_id in proptest::prelude::any::<u64>(),
            len in 0usize..200_000,
            seed in proptest::prelude::any::<u64>(),
        ) {
            let bundle: Vec<u8> = (0..len)
                .map(|i| (seed.wrapping_mul(i as u64 + 1) >> 32) as u8)
                .collect();
            for max_payload in [MAX_CHUNK_PAYLOAD, DATAGRAM_SAFE_PAYLOAD] {
                let frames = chunk_bundle(router_id, epoch_id, &bundle, max_payload);
                proptest::prop_assert_eq!(
                    frames.len(),
                    bundle.len().div_ceil(max_payload).max(1)
                );
                let mut reassembled = Vec::new();
                for (i, frame) in frames.iter().enumerate() {
                    if max_payload == DATAGRAM_SAFE_PAYLOAD {
                        proptest::prop_assert!(
                            frame.len() <= 1400,
                            "frame {} is {} bytes — over the datagram budget",
                            i, frame.len()
                        );
                    }
                    let (f, used) = ChunkFrame::decode(frame).unwrap();
                    proptest::prop_assert_eq!(used, frame.len());
                    proptest::prop_assert_eq!(f.router_id, router_id);
                    proptest::prop_assert_eq!(f.epoch_id, epoch_id);
                    proptest::prop_assert_eq!(f.seq as usize, i);
                    proptest::prop_assert_eq!(f.total as usize, frames.len());
                    reassembled.extend_from_slice(f.payload);
                }
                proptest::prop_assert_eq!(&reassembled, &bundle);
            }
        }
    }

    #[test]
    fn datagram_safe_frames_fit_the_mtu_budget() {
        const { assert!(DATAGRAM_SAFE_PAYLOAD + CHUNK_HEADER + CHUNK_TRAILER <= 1400) };
        const {
            assert!(
                DATAGRAM_SAFE_PAYLOAD >= 1300,
                "payload should stay efficient"
            )
        };
    }

    #[test]
    fn salvage_recovers_routing_fields_from_payload_corruption() {
        let frames = chunk_bundle(42, 7, &[0u8; 200], 64);
        let mut mangled = frames[1].clone();
        let p = CHUNK_HEADER + 3;
        mangled[p] ^= 0x40; // corrupt payload only
        assert!(matches!(
            ChunkFrame::decode(&mangled),
            Err(ChunkError::ChecksumMismatch { .. })
        ));
        assert_eq!(ChunkFrame::salvage_header(&mangled), Some((42, 7, 1)));
        // Corrupted magic is unsalvageable.
        let mut dead = frames[1].clone();
        dead[0] ^= 0xFF;
        assert_eq!(ChunkFrame::salvage_header(&dead), None);
    }
}
