//! Tick sources: the bridge between the session layer's virtual time and
//! a real deployment's wall clock.
//!
//! Every timer in [`crate::session`] — retransmit backoff, straggler
//! deadlines, checkpoint resume — takes the current time as a plain
//! `now: u64` tick parameter. That keeps the whole state machine
//! deterministic and testable, but it leaves open *where* ticks come
//! from. This module answers that with one trait and two sources:
//!
//! * [`ManualClock`] — a settable counter. Tests advance it explicitly,
//!   which is exactly the virtual-tick discipline every existing test
//!   already uses (those tests keep passing unchanged: they never see a
//!   clock, they pass `now` directly).
//! * [`TickClock`] — maps a monotonic [`Instant`] onto ticks of a fixed
//!   [`Duration`]. This is what `dcs-cli serve`/`monitor` and the socket
//!   soak run on: a collector configured with a 512-tick deadline and a
//!   1 ms tick times out stragglers after ~512 ms of real time, through
//!   the *same* code path the virtual-tick tests prove correct.
//!
//! The trait is object-safe, so runtime code can hold a
//! `&dyn Clock` and tests can substitute a [`ManualClock`] without
//! generics leaking through the driver layer.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// A source of session-layer ticks.
///
/// Implementations must be monotonic: successive calls never go
/// backwards. They need not advance — a stalled [`ManualClock`] is how a
/// test freezes time.
pub trait Clock: Send + Sync {
    /// The current tick.
    fn now(&self) -> u64;
}

/// A manually driven clock for deterministic tests.
///
/// Interior-mutable (atomic), so a test can hold shared references in
/// driver code and still advance time from the outside.
#[derive(Debug, Default)]
pub struct ManualClock(AtomicU64);

impl ManualClock {
    /// A clock starting at tick `start`.
    pub fn new(start: u64) -> Self {
        ManualClock(AtomicU64::new(start))
    }

    /// Advances the clock by `ticks`.
    pub fn advance(&self, ticks: u64) {
        self.0.fetch_add(ticks, Ordering::SeqCst);
    }

    /// Sets the clock to `tick` (must not move backwards; asserts in
    /// debug builds).
    pub fn set(&self, tick: u64) {
        let prev = self.0.swap(tick, Ordering::SeqCst);
        debug_assert!(tick >= prev, "ManualClock moved backwards");
    }
}

impl Clock for ManualClock {
    fn now(&self) -> u64 {
        self.0.load(Ordering::SeqCst)
    }
}

/// A real-time clock: ticks are fixed slices of monotonic wall time.
///
/// Tick 0 is the instant the clock was created; tick *n* begins at
/// `start + n * tick`. [`Instant`] is monotonic, so this clock never goes
/// backwards even across system time adjustments.
#[derive(Debug, Clone)]
pub struct TickClock {
    start: Instant,
    tick: Duration,
}

impl TickClock {
    /// A clock whose tick lasts `tick` of real time. Panics if `tick` is
    /// zero — a zero-length tick would make every deadline instant.
    pub fn new(tick: Duration) -> Self {
        assert!(!tick.is_zero(), "TickClock tick must be non-zero");
        TickClock {
            start: Instant::now(),
            tick,
        }
    }

    /// A clock ticking once per millisecond — the serve/monitor default:
    /// the stock [`CollectorConfig`](crate::session::CollectorConfig)
    /// deadline of 512 ticks becomes ~half a second.
    pub fn millis() -> Self {
        TickClock::new(Duration::from_millis(1))
    }

    /// The real duration of one tick.
    pub fn tick(&self) -> Duration {
        self.tick
    }

    /// Sleeps just past the start of the next tick — the polling cadence
    /// for socket drivers that have nothing readable.
    pub fn sleep_one_tick(&self) {
        std::thread::sleep(self.tick);
    }
}

impl Clock for TickClock {
    fn now(&self) -> u64 {
        let elapsed = self.start.elapsed();
        (elapsed.as_nanos() / self.tick.as_nanos().max(1)) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ingest::RouterFault;
    use crate::session::{CollectorConfig, EpochCollector, SessionConfig, StragglerPolicy};
    use crate::transport::chunk_bundle;

    fn cfg(deadline: u64) -> CollectorConfig {
        CollectorConfig {
            deadline,
            straggler: StragglerPolicy::Deadline,
            session: SessionConfig {
                base_backoff: 4,
                max_backoff: 32,
                max_retries: 8,
                jitter: 3,
            },
        }
    }

    #[test]
    fn manual_clock_stall_times_out_identically_to_virtual_ticks() {
        // Path A: the existing virtual-tick discipline — a bare counter.
        let mut virt = EpochCollector::new(5, [9], cfg(40), 7, 0);
        let mut virt_requests = Vec::new();
        let mut now = 0u64;
        while !virt.ready(now) {
            for _ in virt.poll(now) {
                virt_requests.push(now);
            }
            now += 1;
        }
        let virt_epoch = virt.finalize(now);

        // Path B: the same schedule read through the Clock trait.
        let clock = ManualClock::new(0);
        let mut real = EpochCollector::new(5, [9], cfg(40), 7, clock.now());
        let mut clock_requests = Vec::new();
        while !real.ready(clock.now()) {
            let t = clock.now();
            for _ in real.poll(t) {
                clock_requests.push(t);
            }
            clock.advance(1);
        }
        let clock_epoch = real.finalize(clock.now());

        // Identical retransmit schedule, identical typed exclusion.
        assert_eq!(virt_requests, clock_requests);
        assert_eq!(virt_epoch.exclusions.len(), 1);
        assert_eq!(clock_epoch.exclusions.len(), 1);
        assert_eq!(
            virt_epoch.exclusions[0].fault,
            clock_epoch.exclusions[0].fault
        );
        assert!(matches!(
            clock_epoch.exclusions[0].fault,
            RouterFault::TimedOut { .. }
        ));
    }

    #[test]
    fn backoff_gaps_grow_exponentially_with_capped_jitter() {
        let clock = ManualClock::new(100);
        let c = cfg(10_000);
        let mut collector = EpochCollector::new(1, [9], c, 42, clock.now());
        let mut request_ticks = Vec::new();
        // Session gives up after max_retries requests; run well past it.
        for _ in 0..2_000 {
            let now = clock.now();
            for _ in collector.poll(now) {
                request_ticks.push(now);
            }
            clock.advance(1);
        }
        assert_eq!(
            request_ticks.len(),
            c.session.max_retries as usize,
            "a stalled session retries exactly max_retries times"
        );
        let mut gaps: Vec<u64> = request_ticks.windows(2).map(|w| w[1] - w[0]).collect();
        // Every gap is bounded by the backoff cap plus the jitter bound,
        // and the schedule reaches (but never exceeds) that cap.
        let bound = c.session.max_backoff + c.session.jitter;
        assert!(gaps.iter().all(|&g| g <= bound), "gap over cap: {gaps:?}");
        assert!(
            gaps.iter().any(|&g| g >= c.session.max_backoff),
            "backoff never reached its cap: {gaps:?}"
        );
        // Ignoring jitter (< base_backoff here), gaps never shrink by
        // more than the jitter bound: the schedule is monotone modulo
        // jitter until it saturates.
        gaps.dedup();
        for w in gaps.windows(2) {
            assert!(
                w[1] + c.session.jitter >= w[0],
                "backoff shrank beyond jitter: {gaps:?}"
            );
        }
    }

    #[test]
    fn tick_clock_is_monotonic_and_times_out_a_stalled_session() {
        // 200 µs ticks, 50-tick deadline: ~10 ms of real time.
        let clock = TickClock::new(Duration::from_micros(200));
        let mut collector = EpochCollector::new(3, [4, 9], cfg(50), 11, clock.now());

        // Router 4 delivers immediately; router 9 stalls forever.
        for frame in chunk_bundle(4, 3, b"router four's bundle", 8) {
            collector.offer(&frame, clock.now());
        }

        let mut last = clock.now();
        while !collector.ready(clock.now()) {
            let now = clock.now();
            assert!(now >= last, "TickClock went backwards");
            last = now;
            collector.poll(now);
            clock.sleep_one_tick();
        }
        let epoch = collector.finalize(clock.now());
        assert_eq!(epoch.frames.len(), 1, "router 4 must survive");
        assert_eq!(epoch.exclusions.len(), 1, "router 9 must be excluded");
        assert!(
            matches!(epoch.exclusions[0].fault, RouterFault::TimedOut { .. }),
            "real-clock stall must produce the same typed TimedOut as \
             virtual ticks, got {:?}",
            epoch.exclusions[0].fault
        );
    }

    #[test]
    fn manual_clock_shared_across_threads() {
        let clock = std::sync::Arc::new(ManualClock::new(0));
        let reader = {
            let clock = clock.clone();
            std::thread::spawn(move || {
                while clock.now() < 100 {
                    std::hint::spin_loop();
                }
                clock.now()
            })
        };
        clock.advance(100);
        assert!(reader.join().unwrap() >= 100);
    }
}
