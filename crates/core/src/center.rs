//! The central analysis module: fuses digests, runs both detection
//! pipelines, emits reports.

use crate::ingest::{self, DigestShape, Exclusion, IngestError, IngestReport, RouterFault};
use crate::monitor::{RouterDigest, RouterDigestView};
use crate::report::SketchReport;
use crate::report::{AlignedReport, EpochReport, EpochTimings, TransportStats, UnalignedReport};
use crate::session::CollectedEpoch;
use crate::stages::{Stage, StageRecorder};
use dcs_aligned::{refined_detect_cached, refined_detect_seeded, SearchConfig, SearchScratch};
use dcs_bitmap::{Bitmap, BitmapView, ColMatrix, RowMatrix};
use dcs_obs::{MetricsRegistry, MetricsSnapshot};
use dcs_parallel::ComputeBudget;
use dcs_sketch::{decode_sketch, SketchDomain, SketchWire};
use dcs_unaligned::lambda::p_star_for_edge_prob;
use dcs_unaligned::{
    build_group_graph_parallel, build_group_graph_prescreened, er_test, find_pattern,
    CoreFindConfig, ErTestConfig, GroupLayout, IncrementalConfig, IncrementalCorrelator,
    LambdaTable, PreScreen, ScreenConfig,
};
use std::sync::{Mutex, PoisonError};
use std::time::Instant;

/// Configuration of the analysis centre.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct AnalysisConfig {
    /// Aligned-case greedy search settings.
    pub search: SearchConfig,
    /// Edge probability of the *statistical-test* graph (must stay below
    /// the 1/n phase transition; the paper uses 0.65/n).
    pub test_p1: f64,
    /// Edge probability of the *detection* graph (deliberately above 1/n;
    /// the paper uses ~8/n).
    pub detect_p1: f64,
    /// Largest-component alarm threshold; `None` derives it from
    /// [`ErTestConfig::scaled`].
    pub component_threshold: Option<usize>,
    /// Core-finding settings (β and d).
    pub corefind: CoreFindConfig,
    /// Threads and kernel blocking for the analysis sweeps (the aligned
    /// search reads its own copy from `search.compute`; keeping one budget
    /// here keeps both pipelines on the same setting).
    pub compute: dcs_parallel::ComputeBudget,
    /// Minimum number of validated digest bundles required to analyse an
    /// epoch (the graceful-degradation floor): with fewer survivors,
    /// [`AnalysisCenter::analyze_epoch`] returns
    /// [`IngestError::QuorumTooSmall`] instead of running the pipelines
    /// on a sliver of the deployment. 1 = run on whatever survives.
    pub min_quorum: usize,
    /// Unaligned test-graph engine settings (prescreen shape, incremental
    /// maintenance, audit cadence).
    pub ugraph: UnalignedGraphConfig,
    /// Whether the fused content-index heavy-hitter sketch (when the
    /// epoch's bundles carry one) seeds the aligned core search.
    /// **Advisory only**: seeding reorders the candidate scan, it never
    /// changes the detection — flipping this flag leaves every verdict
    /// byte-identical (see `sketch_seeding_is_advisory` in the tests).
    pub sketch_seed: bool,
    /// How many fused heavy-hitter columns are handed to the search as
    /// seeds when `sketch_seed` is on.
    pub sketch_top_k: usize,
}

/// How the unaligned statistical-test graph is built each epoch.
///
/// The detection graph raised on an alarm always uses the retained
/// all-pairs path ([`dcs_unaligned::build_group_graph_parallel`]) — it is
/// rare and serves as the reference oracle.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct UnalignedGraphConfig {
    /// Band signatures per row for the conservative prescreen.
    pub prescreen_bands: usize,
    /// Weight-class bucket width (bits) for the prescreen.
    pub class_width: u32,
    /// Maintain the graph incrementally across epochs (delta re-test of
    /// changed groups only). `false` = full prescreened rebuild every
    /// epoch; either way the graph is identical to the all-pairs build.
    pub incremental: bool,
    /// Full-rebuild equality audit cadence in epochs (0 disables).
    pub audit_every: u64,
}

impl Default for UnalignedGraphConfig {
    fn default() -> Self {
        UnalignedGraphConfig {
            prescreen_bands: 8,
            class_width: 32,
            incremental: true,
            audit_every: 16,
        }
    }
}

impl UnalignedGraphConfig {
    fn screen(&self) -> ScreenConfig {
        ScreenConfig {
            bands: self.prescreen_bands,
            class_width: self.class_width,
        }
    }
}

fn default_min_quorum() -> usize {
    1
}

impl AnalysisConfig {
    /// A configuration tuned for a deployment with `n_groups` total
    /// flow-split groups across all routers.
    ///
    /// # Panics
    /// Panics if `n_groups < 2`.
    pub fn for_groups(n_groups: usize) -> Self {
        assert!(n_groups >= 2, "need at least two groups");
        let n = n_groups as f64;
        AnalysisConfig {
            search: SearchConfig::default(),
            test_p1: 0.65 / n,
            detect_p1: 8.0 / n,
            component_threshold: None,
            corefind: CoreFindConfig::default(),
            compute: dcs_parallel::ComputeBudget::default(),
            min_quorum: default_min_quorum(),
            ugraph: UnalignedGraphConfig::default(),
            sketch_seed: true,
            sketch_top_k: 16,
        }
    }

    /// Enables or disables sketch seeding of the aligned search.
    pub fn with_sketch_seed(mut self, on: bool) -> Self {
        self.sketch_seed = on;
        self
    }

    /// Sets the minimum surviving-bundle count required to analyse.
    pub fn with_min_quorum(mut self, min_quorum: usize) -> Self {
        self.min_quorum = min_quorum;
        self
    }

    /// Applies one compute budget to both pipelines (the unaligned sweeps
    /// and the aligned search).
    pub fn with_compute(mut self, compute: dcs_parallel::ComputeBudget) -> Self {
        self.compute = compute;
        self.search.compute = compute;
        self
    }
}

/// Reusable per-epoch buffers, owned by the centre and recycled across
/// epochs: after the first epoch of a given deployment shape, fusing an
/// epoch allocates nothing — digests stream from the wire frames straight
/// into these buffers.
#[derive(Debug)]
struct EpochScratch {
    /// The fused aligned m×n column matrix.
    matrix: ColMatrix,
    /// Per-column weights, accumulated incrementally during fusion (spares
    /// the search its screening popcount pass).
    col_weights: Vec<u32>,
    /// Aligned-search scratch (screen order, work matrix, fan-out buffers).
    search: SearchScratch,
    /// The vertically stacked unaligned arrays.
    urows: RowMatrix,
    /// Owner router of each global flow-split group.
    group_owner: Vec<usize>,
    /// Band signatures extracted during the stacking pass, handed to the
    /// prescreen (round-trips by swap, so both buffers recycle).
    stack_sigs: Vec<u64>,
    /// Conservative pair prescreen (weights, classes, band signatures).
    screen: PreScreen,
}

impl EpochScratch {
    fn new() -> Self {
        EpochScratch {
            matrix: ColMatrix::new(0, 0),
            col_weights: Vec::new(),
            search: SearchScratch::new(),
            urows: RowMatrix::new(0),
            group_owner: Vec::new(),
            stack_sigs: Vec::new(),
            screen: PreScreen::new(),
        }
    }
}

/// The per-digest access the fused pipelines need — implemented by owned
/// bundles and zero-copy wire views, so both ingest paths run one shared
/// analysis body.
trait EpochSource: DigestShape {
    /// Raw traffic bytes summarised by this bundle.
    fn src_raw_bytes(&self) -> u64;
    /// Encoded digest bytes of this bundle.
    fn src_encoded_len(&self) -> usize;
    /// Number of unaligned flow-split groups.
    fn groups(&self) -> usize;
    /// The bundle's sidecar sketch payload (`DCSS` bytes), if it ships one.
    fn src_sketch_payload(&self) -> Option<&[u8]>;
    /// Fuses the aligned bitmaps of `digests` into `matrix`, accumulating
    /// per-column weights in `weights`, sharded per `budget`.
    fn fuse_aligned(
        digests: &[&Self],
        matrix: &mut ColMatrix,
        weights: &mut Vec<u32>,
        budget: &ComputeBudget,
    );
    /// Stacks the unaligned arrays of `digests` vertically into `rows`,
    /// sharded per `budget`, extracting `bands` band signatures per row
    /// into `sigs` while each shard's rows are cache-hot (the prescreen
    /// consumes them via
    /// [`PreScreen::rebuild_with_sigs`](dcs_unaligned::PreScreen::rebuild_with_sigs)).
    fn stack_unaligned(
        digests: &[&Self],
        rows: &mut RowMatrix,
        bands: usize,
        sigs: &mut Vec<u64>,
        budget: &ComputeBudget,
    );
}

impl EpochSource for RouterDigest {
    fn src_raw_bytes(&self) -> u64 {
        self.raw_bytes()
    }
    fn src_encoded_len(&self) -> usize {
        self.encoded_len()
    }
    fn groups(&self) -> usize {
        self.unaligned.groups()
    }
    fn src_sketch_payload(&self) -> Option<&[u8]> {
        self.sketch_payload()
    }
    fn fuse_aligned(
        digests: &[&Self],
        matrix: &mut ColMatrix,
        weights: &mut Vec<u32>,
        budget: &ComputeBudget,
    ) {
        let rows: Vec<&Bitmap> = digests.iter().map(|d| &d.aligned.bitmap).collect();
        let shards = budget.effective_shards();
        matrix.fuse_rows_into_sharded(&rows, weights, shards, budget.workers_for(shards));
    }
    fn stack_unaligned(
        digests: &[&Self],
        rows: &mut RowMatrix,
        bands: usize,
        sigs: &mut Vec<u64>,
        budget: &ComputeBudget,
    ) {
        let ncols = digests
            .first()
            .and_then(|d| d.unaligned.arrays.first())
            .map_or(0, Bitmap::len);
        let flat: Vec<&Bitmap> = digests.iter().flat_map(|d| &d.unaligned.arrays).collect();
        let shards = budget.effective_shards();
        rows.fill_rows_sharded_with_sigs(
            ncols,
            &flat,
            bands,
            sigs,
            shards,
            budget.workers_for(shards),
        );
    }
}

impl EpochSource for RouterDigestView<'_> {
    fn src_raw_bytes(&self) -> u64 {
        self.raw_bytes()
    }
    fn src_encoded_len(&self) -> usize {
        self.encoded_len()
    }
    fn groups(&self) -> usize {
        self.unaligned.groups()
    }
    fn src_sketch_payload(&self) -> Option<&[u8]> {
        self.sketch_payload()
    }
    fn fuse_aligned(
        digests: &[&Self],
        matrix: &mut ColMatrix,
        weights: &mut Vec<u32>,
        budget: &ComputeBudget,
    ) {
        let rows: Vec<BitmapView<'_>> = digests.iter().map(|d| d.aligned.bitmap).collect();
        let shards = budget.effective_shards();
        matrix.fuse_rows_into_sharded(&rows, weights, shards, budget.workers_for(shards));
    }
    fn stack_unaligned(
        digests: &[&Self],
        rows: &mut RowMatrix,
        bands: usize,
        sigs: &mut Vec<u64>,
        budget: &ComputeBudget,
    ) {
        let ncols = digests
            .first()
            .filter(|d| d.unaligned.array_count() > 0)
            .map_or(0, |d| d.unaligned.array(0).len());
        let flat: Vec<BitmapView<'_>> = digests
            .iter()
            .flat_map(|d| (0..d.unaligned.array_count()).map(move |i| d.unaligned.array(i)))
            .collect();
        let shards = budget.effective_shards();
        rows.fill_rows_sharded_with_sigs(
            ncols,
            &flat,
            bands,
            sigs,
            shards,
            budget.workers_for(shards),
        );
    }
}

/// The analysis centre.
#[derive(Debug)]
pub struct AnalysisCenter {
    cfg: AnalysisConfig,
    /// Pool of reusable epoch scratches. Analysis *checks a scratch out*
    /// (taking ownership) and returns it when the epoch completes, so the
    /// lock is held only for the pop/push — never across an analysis —
    /// and a panicking epoch simply drops its scratch instead of
    /// poisoning a lock: the next epoch pays one warm-up regrowth and the
    /// centre keeps serving. Under the pipelined runtime
    /// ([`crate::runtime::EpochPipeline`]) the pool holds one warm
    /// scratch per in-flight epoch (double-buffering).
    scratch: Mutex<Vec<EpochScratch>>,
    /// Pool of incremental test-graph correlators, checked out per epoch
    /// like the scratches. Kept separate from [`EpochScratch`]: scratch
    /// contents are per-epoch throwaway, correlator state must persist
    /// *across* epochs to be worth anything. Under the pipelined runtime
    /// analysis is serialised, so one correlator sees every epoch in
    /// order; if epochs ever run concurrently each checkout still
    /// produces a correct (merely colder) graph, because a correlator
    /// re-tests exactly what differs from the last epoch *it* saw.
    correlators: Mutex<Vec<IncrementalCorrelator>>,
    metrics: MetricsRegistry,
}

impl AnalysisCenter {
    /// Creates the centre.
    pub fn new(cfg: AnalysisConfig) -> Self {
        let inc = IncrementalConfig {
            audit_every: cfg.ugraph.audit_every,
        };
        AnalysisCenter {
            cfg,
            scratch: Mutex::new(vec![EpochScratch::new()]),
            correlators: Mutex::new(vec![IncrementalCorrelator::new(inc)]),
            metrics: MetricsRegistry::new(),
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &AnalysisConfig {
        &self.cfg
    }

    /// A deterministic snapshot of every metric the centre (and the
    /// layers below it) has reported: per-stage timings of both
    /// pipelines, ingest and transport accounting, kernel dispatch — see
    /// [`crate::stages`] for the naming conventions.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }

    /// The live registry the centre reports into (to share with
    /// co-located layers or to take delta-based rate views).
    pub fn metrics_registry(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Checks a warm scratch out of the pool (or allocates a cold one if
    /// the pool is empty — first use, every scratch currently in flight,
    /// or a previous epoch panicked and dropped its checkout). The pool
    /// lock guards only the `Vec` pop, which cannot panic mid-update, so
    /// a [`PoisonError`] here can safely be bypassed.
    fn take_scratch(&self) -> EpochScratch {
        self.scratch
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .pop()
            .unwrap_or_else(EpochScratch::new)
    }

    /// Returns a scratch to the pool after a completed epoch. Panicking
    /// epochs never get here — their scratch (whose contents are suspect)
    /// unwinds out of existence instead of being recycled.
    fn return_scratch(&self, scratch: EpochScratch) {
        self.scratch
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(scratch);
    }

    /// Checks an incremental correlator out of the pool (a cold one if
    /// every warm correlator is in flight — correct, just a full build).
    fn take_correlator(&self) -> IncrementalCorrelator {
        self.correlators
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .pop()
            .unwrap_or_else(|| {
                IncrementalCorrelator::new(IncrementalConfig {
                    audit_every: self.cfg.ugraph.audit_every,
                })
            })
    }

    /// Returns a correlator (with its warm cross-epoch state) to the
    /// pool. Like scratches, a panicking epoch drops its checkout.
    fn return_correlator(&self, corr: IncrementalCorrelator) {
        self.correlators
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(corr);
    }

    /// Runs both pipelines over one epoch's digests.
    ///
    /// The batch is validated first (see [`crate::ingest`]): bundles with
    /// the wrong shape, duplicate router ids or a desynced epoch id are
    /// excluded — with per-bundle accounting in the returned report's
    /// `ingest` field — and the pipelines run on the surviving quorum.
    /// An empty batch or one below the configured
    /// [`min_quorum`](AnalysisConfig::min_quorum) is a typed
    /// [`IngestError`], never a panic.
    pub fn analyze_epoch(&self, digests: &[RouterDigest]) -> Result<EpochReport, IngestError> {
        let t0 = Instant::now();
        let (accepted, report) = ingest::validate(digests, self.cfg.min_quorum)?;
        Ok(self.analyze_validated(&accepted, report, t0))
    }

    /// Runs both pipelines over one epoch of *wire frames*, as shipped by
    /// [`RouterDigest::encode_wire`] — the zero-copy fast path. Each frame
    /// is validated in place and viewed through [`RouterDigestView`];
    /// accepted digests are fused into the centre's reusable scratch
    /// straight from the frame bytes, with no intermediate owned digest.
    /// Frames that fail to parse are excluded with a [`RouterFault::Wire`]
    /// entry; the rest go through byte-for-byte the same validation and
    /// quorum policy as [`Self::analyze_epoch`].
    pub fn analyze_epoch_wire<B: AsRef<[u8]>>(
        &self,
        frames: &[B],
    ) -> Result<EpochReport, IngestError> {
        let t0 = Instant::now();
        let mut views: Vec<(usize, RouterDigestView<'_>)> = Vec::new();
        let mut excluded: Vec<Exclusion> = Vec::new();
        for (index, frame) in frames.iter().enumerate() {
            match RouterDigestView::parse(frame.as_ref()) {
                Ok((view, _)) => views.push((index, view)),
                Err(e) => excluded.push(Exclusion {
                    index,
                    router_id: None,
                    fault: RouterFault::Wire(e.to_string()),
                }),
            }
        }
        let candidates: Vec<(usize, &RouterDigestView<'_>)> =
            views.iter().map(|(i, v)| (*i, v)).collect();
        let (accepted, report) =
            ingest::validate_batch(frames.len(), candidates, excluded, self.cfg.min_quorum)?;
        Ok(self.analyze_validated(&accepted, report, t0))
    }

    /// Runs both pipelines over an epoch delivered through the transport
    /// layer: the reassembled bundles of a finalized
    /// [`EpochCollector`](crate::session::EpochCollector), with its
    /// transport exclusions (timed-out, checksum-dead or incomplete
    /// sessions) carried into the ingest accounting ahead of the usual
    /// shape/consensus validation, and its delivery stats stamped onto
    /// the report. Quorum is judged over *all* exclusions, so a
    /// transport-degraded epoch degrades exactly like a content-degraded
    /// one.
    pub fn analyze_epoch_collected(
        &self,
        epoch: &CollectedEpoch,
    ) -> Result<EpochReport, IngestError> {
        let t0 = Instant::now();
        let mut views: Vec<(usize, RouterDigestView<'_>)> = Vec::new();
        let mut excluded: Vec<Exclusion> = epoch.exclusions.clone();
        for (index, bundle) in &epoch.frames {
            match RouterDigestView::parse(bundle) {
                Ok((view, _)) => views.push((*index, view)),
                Err(e) => excluded.push(Exclusion {
                    index: *index,
                    router_id: None,
                    fault: RouterFault::Wire(e.to_string()),
                }),
            }
        }
        let candidates: Vec<(usize, &RouterDigestView<'_>)> =
            views.iter().map(|(i, v)| (*i, v)).collect();
        let (accepted, report) =
            ingest::validate_batch(epoch.submitted, candidates, excluded, self.cfg.min_quorum)?;
        let mut out = self.analyze_validated(&accepted, report, t0);
        out.transport = epoch.stats;
        self.record_transport(&epoch.stats);
        Ok(out)
    }

    /// Runs both pipelines over an epoch delivered through an
    /// aggregation tier (see [`crate::aggregate`]): each element of
    /// `bundles` is one encoded [`AggregateBundle`](crate::aggregate::AggregateBundle) from a regional
    /// aggregator. The embedded child frames — the same DCSR bytes a
    /// flat deployment would have shipped — are parsed and validated
    /// globally, so the detection output is byte-identical to
    /// [`Self::analyze_epoch_wire`] over the union of the delivered
    /// child frames.
    ///
    /// Cross-level accounting: every child the aggregators excluded
    /// surfaces in the report's ingest section wrapped in
    /// [`RouterFault::AtLevel`] (keeping its original fault kind and the
    /// level it was lost at), and a bundle that fails to decode counts
    /// as one excluded submission with an `AtLevel`-wrapped wire fault.
    /// `submitted` — and therefore [`min_quorum`](AnalysisConfig::min_quorum)
    /// — counts reachable *leaves*, never bundles.
    pub fn analyze_epoch_aggregated<B: AsRef<[u8]>>(
        &self,
        bundles: &[B],
    ) -> Result<EpochReport, IngestError> {
        let t0 = Instant::now();
        self.analyze_aggregated_inner(bundles.iter().map(|b| b.as_ref()), Vec::new(), None, t0)
    }

    /// [`Self::analyze_epoch_aggregated`] for an epoch collected off the
    /// upstream transport hop: the reassembled frames of `epoch` are
    /// aggregate bundles, and an aggregator the transport lost becomes a
    /// single excluded submission wrapped in [`RouterFault::AtLevel`]
    /// with the aggregator's id (its whole subtree is unreachable, but
    /// its leaf count is unknown here — quorum degrades by at least
    /// one). Delivery stats of the upstream hop are stamped onto the
    /// report like [`Self::analyze_epoch_collected`].
    pub fn analyze_epoch_aggregated_collected(
        &self,
        epoch: &CollectedEpoch,
    ) -> Result<EpochReport, IngestError> {
        let t0 = Instant::now();
        let lost: Vec<(Option<u64>, RouterFault)> = epoch
            .exclusions
            .iter()
            .map(|e| {
                let agg = e.router_id.map(|r| r as u64);
                (
                    agg,
                    RouterFault::AtLevel {
                        level: 1,
                        aggregator_id: agg,
                        fault: Box::new(e.fault.clone()),
                    },
                )
            })
            .collect();
        let mut out = self.analyze_aggregated_inner(
            epoch.frames.iter().map(|(_, b)| b.as_slice()),
            lost,
            Some(epoch.stats),
            t0,
        )?;
        out.transport = epoch.stats;
        Ok(out)
    }

    /// Shared body of the aggregated ingest paths: decodes the bundles,
    /// flattens their embedded child frames into one globally-validated
    /// batch, and folds every below-centre exclusion into the ingest
    /// accounting with its level.
    fn analyze_aggregated_inner<'b>(
        &self,
        bundles: impl Iterator<Item = &'b [u8]>,
        lost_aggregators: Vec<(Option<u64>, RouterFault)>,
        stats: Option<TransportStats>,
        t0: Instant,
    ) -> Result<EpochReport, IngestError> {
        use crate::aggregate::{level_label, AggregateBundle};
        let fuse_t0 = Instant::now();
        let mut decoded: Vec<AggregateBundle> = Vec::new();
        let mut rejected: Vec<RouterFault> = Vec::new();
        let mut received_bytes = 0u64;
        for bytes in bundles {
            received_bytes += bytes.len() as u64;
            match AggregateBundle::decode_wire(bytes) {
                Ok((bundle, _)) => decoded.push(bundle),
                Err(e) => rejected.push(RouterFault::AtLevel {
                    level: 1,
                    aggregator_id: None,
                    fault: Box::new(RouterFault::Wire(e.to_string())),
                }),
            }
        }

        // Flatten: every embedded child frame joins one global batch
        // (per-bundle order preserved), every below-centre exclusion is
        // wrapped with the level it was recorded at. Validation — shape,
        // duplicates, epoch consensus, quorum — then runs ONCE over the
        // global batch, exactly as flat ingest would.
        let mut views: Vec<(usize, RouterDigestView<'_>)> = Vec::new();
        let mut excluded: Vec<Exclusion> = Vec::new();
        let mut index = 0usize;
        let mut leaves = 0usize;
        for bundle in &decoded {
            for frame in &bundle.frames {
                match RouterDigestView::parse(frame) {
                    Ok((view, _)) => views.push((index, view)),
                    Err(e) => excluded.push(Exclusion {
                        index,
                        router_id: None,
                        fault: RouterFault::Wire(e.to_string()),
                    }),
                }
                index += 1;
                leaves += 1;
            }
            for excl in &bundle.exclusions {
                excluded.push(Exclusion {
                    index,
                    router_id: Some(excl.router_id as usize),
                    fault: RouterFault::AtLevel {
                        level: bundle.level,
                        aggregator_id: Some(bundle.aggregator_id),
                        fault: Box::new(excl.fault.clone()),
                    },
                });
                index += 1;
                leaves += 1;
            }
        }
        let rejected_bundles = rejected.len() as u64;
        for fault in rejected {
            excluded.push(Exclusion {
                index,
                router_id: None,
                fault,
            });
            index += 1;
        }
        for (agg, fault) in lost_aggregators {
            excluded.push(Exclusion {
                index,
                router_id: agg.map(|a| a as usize),
                fault,
            });
            index += 1;
        }
        let submitted = index;

        self.metrics
            .counter("aggregate_bundles_total", &[])
            .add(decoded.len() as u64);
        self.metrics
            .counter("aggregate_bundles_rejected_total", &[])
            .add(rejected_bundles);
        self.metrics
            .counter("aggregate_received_bytes_total", &[])
            .add(received_bytes);
        if !decoded.is_empty() {
            self.metrics
                .gauge("aggregate_children_per_bundle", &[("level", "0")])
                .set((leaves / decoded.len().max(1)) as u64);
        }
        self.metrics
            .gauge("aggregate_fuse_ns", &[("level", level_label(0))])
            .set((fuse_t0.elapsed().as_nanos() as u64).max(1));

        let candidates: Vec<(usize, &RouterDigestView<'_>)> =
            views.iter().map(|(i, v)| (*i, v)).collect();
        let (accepted, report) =
            ingest::validate_batch(submitted, candidates, excluded, self.cfg.min_quorum)?;
        let out = self.analyze_validated(&accepted, report, t0);
        if let Some(stats) = stats {
            self.record_transport(&stats);
        }
        Ok(out)
    }

    /// Both pipelines over an already-validated batch (owned digests or
    /// zero-copy views), through the centre's reusable epoch scratch.
    ///
    /// This is the staged pipeline driver: every aligned stage
    /// ([`Stage::ALIGNED`]) and unaligned stage ([`Stage::UNALIGNED`])
    /// runs as one recorded span of the centre's metrics registry, and
    /// the report's [`EpochTimings`] view is assembled from exactly the
    /// recorded values — instrumentation observes the pipelines, it
    /// never changes their results.
    fn analyze_validated<D: EpochSource>(
        &self,
        digests: &[&D],
        ingest: IngestReport,
        t0: Instant,
    ) -> EpochReport {
        let raw_bytes: u64 = digests.iter().map(|d| d.src_raw_bytes()).sum();
        let digest_bytes: u64 = digests.iter().map(|d| d.src_encoded_len() as u64).sum();
        self.record_ingest(&ingest);
        let rec = StageRecorder::new(&self.metrics);
        let mut scratch = self.take_scratch();
        let s = &mut scratch;

        // Aligned pipeline, stage 1: fuse per-router bitmaps into the
        // m×n matrix with incremental column weights, over column shards.
        let (_, fuse_ns) = rec.run(Stage::Fuse, || {
            D::fuse_aligned(
                digests,
                &mut s.matrix,
                &mut s.col_weights,
                &self.cfg.compute,
            );
        });
        // Unaligned pipeline, stage 1: stack arrays and map ownership.
        let k = digests.first().map_or(1, |d| d.arrays_per_group());
        let (_, stack_ns) = rec.run(Stage::StackRows, || {
            D::stack_unaligned(
                digests,
                &mut s.urows,
                self.cfg.ugraph.prescreen_bands,
                &mut s.stack_sigs,
                &self.cfg.compute,
            );
            s.group_owner.clear();
            for d in digests {
                s.group_owner
                    .extend(std::iter::repeat_n(d.router_id(), d.groups()));
            }
        });

        // Aligned pipeline, stage 2: merge the bundles' sidecar sketches
        // and derive advisory seed columns for the core search. Runs (and
        // records its span) every epoch, sketches or not, so the stage
        // keys exist in every snapshot.
        let payloads: Vec<&[u8]> = digests
            .iter()
            .filter_map(|d| d.src_sketch_payload())
            .collect();
        let ncols = s.matrix.ncols();
        let ((seeds, sketch), _) =
            rec.run(Stage::SketchFuse, || self.fuse_sketches(&payloads, ncols));

        // Aligned stages 3–6 are timed inside the search layer; record
        // its per-stage split under the stage names.
        let (det, search_t, work) = refined_detect_seeded(
            &s.matrix,
            &s.col_weights,
            &self.cfg.search,
            &seeds,
            &mut s.search,
        );
        // Scan-work accounting. The scanned/pruned split (and the seeded
        // tally) depends on the shard partition and seed order, so those
        // land in last-epoch gauges; their sum covers the same candidate
        // set under any partition and is safe to count.
        self.metrics
            .counter("search_candidates_total", &[])
            .add(work.candidates());
        let g = |name: &str, v: u64| self.metrics.gauge(name, &[]).set(v);
        g("search_pairs_scanned", work.pairs_scanned);
        g("search_pairs_pruned", work.pairs_pruned);
        g("search_seeded_pairs", work.seeded_pairs);
        let screen_ns = rec.record(Stage::Screen, search_t.screen_ns);
        let core_ns = rec.record(Stage::CoreFind, search_t.core_ns);
        let expand_ns = rec.record(Stage::Sweep, search_t.expand_ns);
        let verdict_ns = rec.record(Stage::Terminate, search_t.verdict_ns);
        let aligned = AlignedReport {
            found: det.found,
            routers: det
                .rows
                .iter()
                .map(|&r| digests[r as usize].router_id())
                .collect(),
            content_packets: det.cols.len(),
            signature_indices: det.cols,
        };
        let unaligned = self.unaligned_from_rows(
            &s.urows,
            &mut s.screen,
            &mut s.stack_sigs,
            &s.group_owner,
            k,
            &rec,
        );

        self.return_scratch(scratch);
        self.record_kernels();
        let total_ns = (t0.elapsed().as_nanos() as u64).max(1);
        self.metrics.gauge("epoch_total_ns", &[]).set(total_ns);
        self.metrics.histogram("epoch_ns", &[]).observe(total_ns);
        self.metrics.counter("epochs_analyzed_total", &[]).inc();

        EpochReport {
            routers: digests.len(),
            raw_bytes,
            digest_bytes,
            aligned,
            unaligned,
            ingest,
            sketch,
            timings: EpochTimings {
                fuse_ns: fuse_ns + stack_ns,
                screen_ns,
                sweep_ns: core_ns + expand_ns + verdict_ns,
                total_ns,
            },
            transport: TransportStats::default(),
        }
    }

    /// Merges the epoch's sidecar sketch payloads into one fused sketch
    /// and derives the advisory seed columns: the fused top-k of a
    /// content-index Space-Saving sketch, clipped to the matrix width.
    /// Payloads that fail to decode — or that disagree with the first
    /// decodable one on kind, domain or shape — are skipped, which only
    /// loses prefilter hints, never detection. All accounting lands in
    /// the `sketch_*` metric families (registered every epoch, so the
    /// keys exist even at zero).
    fn fuse_sketches(&self, payloads: &[&[u8]], ncols: usize) -> (Vec<usize>, SketchReport) {
        let mut report = SketchReport {
            artifacts: payloads.len(),
            ..SketchReport::default()
        };
        let mut fused: Option<SketchWire> = None;
        for payload in payloads {
            report.payload_bytes += payload.len() as u64;
            let Ok(wire) = decode_sketch(payload) else {
                report.skipped += 1;
                continue;
            };
            match (&mut fused, wire) {
                (None, wire) => {
                    fused = Some(wire);
                    report.merged += 1;
                }
                (
                    Some(SketchWire::SpaceSaving { domain, sketch }),
                    SketchWire::SpaceSaving {
                        domain: d2,
                        sketch: other,
                    },
                ) if *domain == d2 && sketch.cap() == other.cap() => {
                    sketch.merge(&other);
                    report.merged += 1;
                }
                (
                    Some(SketchWire::Distinct { domain, sketch }),
                    SketchWire::Distinct {
                        domain: d2,
                        sketch: other,
                    },
                ) if *domain == d2
                    && sketch.cap() == other.cap()
                    && sketch.kmv_size() == other.kmv_size() =>
                {
                    sketch.merge(&other);
                    report.merged += 1;
                }
                _ => report.skipped += 1,
            }
        }
        let seeds: Vec<usize> = match &fused {
            Some(SketchWire::SpaceSaving { domain, sketch })
                if self.cfg.sketch_seed && *domain == SketchDomain::ContentIndex.to_u8() =>
            {
                sketch
                    .top_k(self.cfg.sketch_top_k)
                    .iter()
                    .map(|h| h.key as usize)
                    .filter(|&c| c < ncols)
                    .collect()
            }
            _ => Vec::new(),
        };
        report.seed_columns = seeds.clone();
        let c = |name: &str, v: u64| self.metrics.counter(name, &[]).add(v);
        c("sketch_artifacts_total", report.artifacts as u64);
        c("sketch_merged_total", report.merged as u64);
        c("sketch_skipped_total", report.skipped as u64);
        c("sketch_payload_bytes_total", report.payload_bytes);
        self.metrics
            .gauge("sketch_seed_columns", &[])
            .set(seeds.len() as u64);
        self.metrics
            .histogram("sketch_payload_bytes", &[])
            .observe(report.payload_bytes);
        (seeds, report)
    }

    /// Feeds one epoch's ingest accounting into the counter families.
    fn record_ingest(&self, ingest: &IngestReport) {
        self.metrics
            .counter("ingest_submitted_total", &[])
            .add(ingest.submitted as u64);
        self.metrics
            .counter("ingest_accepted_total", &[])
            .add(ingest.accepted.len() as u64);
        for e in &ingest.excluded {
            self.metrics
                .counter("ingest_excluded_total", &[("fault", e.fault.kind())])
                .inc();
        }
    }

    /// Feeds one epoch's transport delivery accounting into counters.
    fn record_transport(&self, t: &TransportStats) {
        let add = |name: &str, v: u64| self.metrics.counter(name, &[]).add(v);
        add("transport_chunks_received_total", t.chunks_received);
        add("transport_retransmits_total", t.retransmits);
        add("transport_late_chunks_total", t.late_chunks);
        add("transport_duplicate_chunks_total", t.duplicate_chunks);
        add("transport_corrupt_chunks_total", t.corrupt_chunks);
        add("transport_checkpoint_resumes_total", t.checkpoint_resumes);
    }

    /// Mirrors the bitmap layer's kernel dispatch state into gauges:
    /// which kernel is live (`kernel_active{kernel}` ∈ {0, 1}) and how
    /// many calls the dispatcher has routed to each
    /// (`kernel_dispatched_calls{kernel}`, process-wide).
    fn record_kernels(&self) {
        let active = dcs_bitmap::active_kernel();
        for (k, calls) in dcs_bitmap::dispatch_counts() {
            let labels = [("kernel", k.name())];
            self.metrics
                .gauge("kernel_dispatched_calls", &labels)
                .set(calls);
            self.metrics
                .gauge("kernel_active", &labels)
                .set(u64::from(k == active));
        }
    }

    /// Capacities of the most recently recycled epoch scratch:
    /// fused-matrix words, weight slots, stacked unaligned words,
    /// group-owner slots, the stacking pass's signature buffer, the
    /// prescreen's weight and signature buffers, then the aligned
    /// search's [`SearchScratch::capacities`].
    /// Steady-state epochs of one deployment shape must not grow any of
    /// these — the no-allocation invariant the zero-copy fusion path is
    /// built around.
    pub fn scratch_capacities(&self) -> [usize; 11] {
        let s = self.take_scratch();
        let [order, shard_orders, work, fanouts] = s.search.capacities();
        let [screen_weights, screen_sigs] = s.screen.capacities();
        let caps = [
            s.matrix.word_capacity(),
            s.col_weights.capacity(),
            s.urows.word_capacity(),
            s.group_owner.capacity(),
            s.stack_sigs.capacity(),
            screen_weights,
            screen_sigs,
            order,
            shard_orders,
            work,
            fanouts,
        ];
        self.return_scratch(s);
        caps
    }

    /// The aligned pipeline: fuse per-router bitmaps into the m×n matrix
    /// and run the refined ASID search.
    ///
    /// Assumes a validated batch (equal bitmap widths); prefer
    /// [`Self::analyze_epoch`], which validates first.
    pub fn analyze_aligned(&self, digests: &[RouterDigest]) -> AlignedReport {
        let refs: Vec<&RouterDigest> = digests.iter().collect();
        let mut scratch = self.take_scratch();
        let s = &mut scratch;
        RouterDigest::fuse_aligned(&refs, &mut s.matrix, &mut s.col_weights, &self.cfg.compute);
        let (det, _) =
            refined_detect_cached(&s.matrix, &s.col_weights, &self.cfg.search, &mut s.search);
        self.return_scratch(scratch);
        AlignedReport {
            found: det.found,
            routers: det
                .rows
                .iter()
                .map(|&r| digests[r as usize].router_id)
                .collect(),
            content_packets: det.cols.len(),
            signature_indices: det.cols,
        }
    }

    /// The unaligned pipeline: fuse rows vertically, build the test graph,
    /// run the ER test, and — on alarm — localise with the detection
    /// graph.
    ///
    /// Assumes a validated batch (consistent group shapes); prefer
    /// [`Self::analyze_epoch`], which validates first. An empty batch is
    /// the typed [`IngestError::NoDigests`], never a panic.
    pub fn analyze_unaligned(
        &self,
        digests: &[RouterDigest],
    ) -> Result<UnalignedReport, IngestError> {
        let first = digests.first().ok_or(IngestError::NoDigests)?;
        let k = first.unaligned.arrays_per_group;
        for d in digests {
            assert_eq!(
                d.unaligned.arrays_per_group, k,
                "digests disagree on arrays per group"
            );
        }
        let refs: Vec<&RouterDigest> = digests.iter().collect();
        let rec = StageRecorder::new(&self.metrics);
        let mut scratch = self.take_scratch();
        let s = &mut scratch;
        let (_, _) = rec.run(Stage::StackRows, || {
            RouterDigest::stack_unaligned(
                &refs,
                &mut s.urows,
                self.cfg.ugraph.prescreen_bands,
                &mut s.stack_sigs,
                &self.cfg.compute,
            );
            s.group_owner.clear();
            for d in digests {
                s.group_owner
                    .extend(std::iter::repeat_n(d.router_id, d.unaligned.groups()));
            }
        });
        let report = self.unaligned_from_rows(
            &s.urows,
            &mut s.screen,
            &mut s.stack_sigs,
            &s.group_owner,
            k,
            &rec,
        );
        self.return_scratch(scratch);
        Ok(report)
    }

    /// ER test + core finding over an already-stacked row matrix, staged
    /// as `prescreen → graph_build → er_test → peel` through `rec`.
    /// `rows` holds every accepted router's arrays vertically
    /// concatenated; `group_owner[g]` is the router owning global group
    /// `g`; `screen` is the epoch scratch's reusable prescreen.
    ///
    /// The test graph comes from the prescreened engine — incrementally
    /// maintained across epochs when
    /// [`incremental`](UnalignedGraphConfig::incremental) is on, rebuilt
    /// fresh each epoch otherwise — and is bit-identical to the all-pairs
    /// oracle either way. Per-epoch engine accounting lands in the
    /// `pairs_screened_total` / `pairs_exact_total` /
    /// `graph_full_rebuilds_total` / `graph_audit_runs_total` counters
    /// and the `graph_edges_live` / `graph_groups_changed` gauges (all
    /// registered every epoch, so the keys exist even at zero).
    #[allow(clippy::too_many_arguments)]
    fn unaligned_from_rows(
        &self,
        rows: &RowMatrix,
        screen: &mut PreScreen,
        stack_sigs: &mut Vec<u64>,
        group_owner: &[usize],
        k: usize,
        rec: &StageRecorder<'_>,
    ) -> UnalignedReport {
        let ncols = rows.ncols();
        let layout = GroupLayout { rows_per_group: k };
        let n_groups = group_owner.len();
        let pairs = k * k;
        let workers = self.cfg.compute.workers_for(n_groups);
        let er_cfg = match self.cfg.component_threshold {
            Some(t) => ErTestConfig {
                component_threshold: t,
            },
            None => ErTestConfig::scaled(n_groups, self.cfg.test_p1),
        };

        // Prescreen: λ table for the test graph, then weights, classes
        // and band signatures for every row.
        let (test_table, _) = rec.run(Stage::Prescreen, || {
            let p_star_test = p_star_for_edge_prob(self.cfg.test_p1, pairs);
            let table = LambdaTable::new(ncols, p_star_test);
            screen.rebuild_with_sigs(rows, &table, self.cfg.ugraph.screen(), workers, stack_sigs);
            table
        });

        // Statistical-test graph through the prescreened engine.
        let ((test_graph, gstats), _) = rec.run(Stage::GraphBuild, || {
            if self.cfg.ugraph.incremental {
                let mut corr = self.take_correlator();
                let (graph, es) = corr.epoch(rows, layout, &test_table, screen, workers);
                self.return_correlator(corr);
                (graph, es)
            } else {
                let (graph, bs) =
                    build_group_graph_prescreened(rows, layout, &test_table, screen, workers);
                let es = dcs_unaligned::EpochStats {
                    pairs_screened: bs.pairs_screened,
                    pairs_exact: bs.pairs_exact,
                    rows_changed: rows.nrows(),
                    groups_changed: n_groups,
                    edges_live: graph.m(),
                    full_rebuild: true,
                    audited: false,
                };
                (graph, es)
            }
        });
        let c = |name: &str, v: u64| self.metrics.counter(name, &[]).add(v);
        c("pairs_screened_total", gstats.pairs_screened);
        c("pairs_exact_total", gstats.pairs_exact);
        c("graph_full_rebuilds_total", u64::from(gstats.full_rebuild));
        c("graph_audit_runs_total", u64::from(gstats.audited));
        let g = |name: &str, v: u64| self.metrics.gauge(name, &[]).set(v);
        g("graph_edges_live", gstats.edges_live as u64);
        g("graph_groups_changed", gstats.groups_changed as u64);
        let (test, _) = rec.run(Stage::ErTest, || er_test(&test_graph, er_cfg));

        // Peel always runs as a recorded span — a quiet epoch records a
        // trivial one — so the stage is present in every snapshot.
        let ((suspected_groups, suspected_routers), _) = rec.run(Stage::Peel, || {
            if test.alarm {
                // Detection graph with the laxer λ′ table — built by the
                // retained all-pairs reference path: alarms are rare, and
                // running the oracle here keeps localisation independent
                // of the screened/incremental engine.
                let p_star_det = p_star_for_edge_prob(self.cfg.detect_p1.min(0.999), pairs);
                let det_table = LambdaTable::new(ncols, p_star_det);
                let det_graph = build_group_graph_parallel(
                    rows,
                    layout,
                    &det_table,
                    self.cfg.compute.workers_for(n_groups),
                );
                let pattern = find_pattern(&det_graph, self.cfg.corefind);
                let groups: Vec<usize> = pattern.vertices().iter().map(|&g| g as usize).collect();
                let mut routers: Vec<usize> = groups.iter().map(|&g| group_owner[g]).collect();
                routers.sort_unstable();
                routers.dedup();
                (groups, routers)
            } else {
                (Vec::new(), Vec::new())
            }
        });

        UnalignedReport {
            alarm: test.alarm,
            largest_component: test.largest_component,
            component_threshold: er_cfg.component_threshold,
            suspected_routers,
            suspected_groups,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monitor::{MonitorConfig, MonitoringPoint};
    use dcs_traffic::{gen, BackgroundConfig, ContentObject, Planting, SizeMix};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Runs a small end-to-end epoch: `routers` routers, the first
    /// `infected` of which carry an aligned common content of `g` packets.
    fn run_epoch(
        seed: u64,
        routers: usize,
        infected: usize,
        g: usize,
        unaligned_plant: bool,
    ) -> EpochReport {
        let mut r = StdRng::seed_from_u64(seed);
        let mcfg = MonitorConfig::small(7, 1 << 14, 4);
        let obj = ContentObject::random_with_packets(&mut r, g, 536);
        let plant = if unaligned_plant {
            Planting::unaligned(obj, 536)
        } else {
            Planting::aligned(obj, 536)
        };
        let bg = BackgroundConfig {
            packets: 800,
            flows: 200,
            zipf_exponent: 1.0,
            size_mix: SizeMix::constant(536),
        };
        let mut digests = Vec::new();
        for id in 0..routers {
            let mut traffic = gen::generate_epoch(&mut r, &bg);
            if id < infected {
                plant.plant_into(&mut r, &mut traffic);
            }
            let mut mp = MonitoringPoint::new(id, &mcfg);
            mp.observe_all(&traffic);
            digests.push(mp.finish_epoch());
        }
        let mut acfg = AnalysisConfig::for_groups(routers * 4);
        acfg.search.n_prime = 400;
        acfg.search.hopefuls = 300;
        AnalysisCenter::new(acfg)
            .analyze_epoch(&digests)
            .expect("clean digests form a quorum")
    }

    #[test]
    fn aligned_end_to_end_detects_infected_routers() {
        let report = run_epoch(1, 24, 20, 30, false);
        assert!(report.aligned.found, "aligned pipeline missed the content");
        // The infected routers are 0..20; most must be reported.
        let hits = report.aligned.routers.iter().filter(|&&r| r < 20).count();
        assert!(hits >= 15, "only {hits}/20 infected routers reported");
        let fps = report.aligned.routers.len() - hits;
        assert!(fps <= 2, "{fps} clean routers falsely reported");
        assert!(report.aligned.content_packets >= 10);
    }

    #[test]
    fn clean_epoch_reports_nothing() {
        let report = run_epoch(2, 16, 0, 30, false);
        assert!(!report.aligned.found, "aligned false positive");
        assert!(!report.unaligned.alarm, "unaligned false positive");
        assert!(report.unaligned.suspected_routers.is_empty());
    }

    #[test]
    fn compression_is_substantial() {
        let report = run_epoch(3, 8, 0, 30, false);
        assert!(
            report.compression_ratio() > 5.0,
            "compression {} too small even at toy scale",
            report.compression_ratio()
        );
    }

    #[test]
    fn empty_digests_are_a_typed_error_not_a_panic() {
        let err = AnalysisCenter::new(AnalysisConfig::for_groups(4))
            .analyze_epoch(&[])
            .unwrap_err();
        assert_eq!(err, IngestError::NoDigests);
        assert_eq!(err.to_string(), "no digests to analyse");
    }

    /// A quarter of the routers ship malformed bundles; the pipelines
    /// must still run on the surviving quorum and find the content, with
    /// the exclusions accounted for.
    #[test]
    fn degraded_epoch_still_detects_on_the_quorum() {
        let mut r = StdRng::seed_from_u64(6);
        let mcfg = MonitorConfig::small(7, 1 << 14, 4);
        let obj = ContentObject::random_with_packets(&mut r, 30, 536);
        let plant = Planting::aligned(obj, 536);
        let bg = BackgroundConfig {
            packets: 800,
            flows: 200,
            zipf_exponent: 1.0,
            size_mix: SizeMix::constant(536),
        };
        let routers = 24;
        let mut digests = Vec::new();
        for id in 0..routers {
            let mut traffic = gen::generate_epoch(&mut r, &bg);
            if id < 20 {
                plant.plant_into(&mut r, &mut traffic);
            }
            let mut mp = MonitoringPoint::new(id, &mcfg);
            mp.observe_all(&traffic);
            digests.push(mp.finish_epoch());
        }
        // Fault 6 of 24: wrong aligned width, desync, empty arrays — and
        // a duplicate of router 1 appended on top.
        digests[0].aligned.bitmap = dcs_bitmap::Bitmap::new(1 << 10);
        digests[5].epoch_id = 99;
        digests[10].unaligned.arrays.clear();
        digests[15].unaligned.arrays_per_group = 3;
        digests[20].aligned.bitmap = dcs_bitmap::Bitmap::new(1 << 10);
        let dup = digests[1].clone();
        digests.push(dup);

        let mut acfg = AnalysisConfig::for_groups(routers * 4);
        acfg.search.n_prime = 400;
        acfg.search.hopefuls = 300;
        let report = AnalysisCenter::new(acfg)
            .analyze_epoch(&digests)
            .expect("19 surviving routers are a quorum");
        assert_eq!(report.ingest.submitted, 25);
        assert_eq!(report.ingest.excluded.len(), 6);
        assert_eq!(report.routers, 19);
        assert!(report.ingest.is_degraded());
        assert!(
            report.aligned.found,
            "aligned pipeline missed the content on the quorum"
        );
        let hits = report
            .aligned
            .routers
            .iter()
            .filter(|&&r| r < 20 && !matches!(r, 0 | 5 | 10 | 15))
            .count();
        assert!(hits >= 12, "only {hits}/16 surviving infected reported");
    }

    #[test]
    fn quorum_floor_is_enforced() {
        let mut r = StdRng::seed_from_u64(5);
        let mcfg = MonitorConfig::small(7, 1 << 12, 4);
        let bg = BackgroundConfig {
            packets: 200,
            flows: 50,
            zipf_exponent: 1.0,
            size_mix: SizeMix::constant(536),
        };
        let mut digests: Vec<RouterDigest> = (0..4)
            .map(|id| {
                let traffic = gen::generate_epoch(&mut r, &bg);
                let mut mp = MonitoringPoint::new(id, &mcfg);
                mp.observe_all(&traffic);
                mp.finish_epoch()
            })
            .collect();
        for d in digests.iter_mut().take(3) {
            d.unaligned.arrays.clear();
        }
        let cfg = AnalysisConfig::for_groups(16).with_min_quorum(3);
        let err = AnalysisCenter::new(cfg)
            .analyze_epoch(&digests)
            .unwrap_err();
        match err {
            IngestError::QuorumTooSmall { required, report } => {
                assert_eq!(required, 3);
                assert_eq!(report.accepted.len(), 1);
            }
            other => panic!("expected QuorumTooSmall, got {other:?}"),
        }
    }

    /// Builds one epoch of encoded wire frames from clean digests.
    fn wire_frames(seed: u64, routers: usize) -> Vec<Vec<u8>> {
        let mut r = StdRng::seed_from_u64(seed);
        let mcfg = MonitorConfig::small(7, 1 << 12, 4);
        let bg = BackgroundConfig {
            packets: 300,
            flows: 80,
            zipf_exponent: 1.0,
            size_mix: SizeMix::constant(536),
        };
        (0..routers)
            .map(|id| {
                let traffic = gen::generate_epoch(&mut r, &bg);
                let mut mp = MonitoringPoint::new(id, &mcfg);
                mp.observe_all(&traffic);
                mp.finish_epoch()
                    .encode_wire()
                    .expect("bundle fits the wire format")
                    .to_vec()
            })
            .collect()
    }

    /// The zero-copy wire path and the owned-digest path must agree on
    /// every verdict and on the ingest accounting.
    #[test]
    fn wire_and_owned_paths_agree() {
        let frames = wire_frames(8, 8);
        let digests: Vec<RouterDigest> = frames
            .iter()
            .map(|f| RouterDigest::decode_wire(f).expect("clean frame").0)
            .collect();
        let center = AnalysisCenter::new(AnalysisConfig::for_groups(32));
        let via_wire = center.analyze_epoch_wire(&frames).expect("quorum");
        let via_owned = center.analyze_epoch(&digests).expect("quorum");
        assert_eq!(via_wire.routers, via_owned.routers);
        assert_eq!(via_wire.raw_bytes, via_owned.raw_bytes);
        assert_eq!(via_wire.digest_bytes, via_owned.digest_bytes);
        assert_eq!(via_wire.ingest, via_owned.ingest);
        assert_eq!(via_wire.aligned.found, via_owned.aligned.found);
        assert_eq!(via_wire.aligned.routers, via_owned.aligned.routers);
        assert_eq!(
            via_wire.aligned.signature_indices,
            via_owned.aligned.signature_indices
        );
        assert_eq!(via_wire.unaligned.alarm, via_owned.unaligned.alarm);
        assert_eq!(
            via_wire.unaligned.largest_component,
            via_owned.unaligned.largest_component
        );
        assert_eq!(
            via_wire.unaligned.suspected_routers,
            via_owned.unaligned.suspected_routers
        );
    }

    /// After warm-up the scratch must hold steady: re-analysing epochs
    /// of the same shape regrows no internal buffer (the zero
    /// per-epoch-allocation invariant of the fusion path). Two warm-up
    /// epochs: the stacking-pass signature buffer and the prescreen's
    /// swap roles each epoch, so both reach capacity only after the
    /// second.
    #[test]
    fn epoch_scratch_holds_steady_across_epochs() {
        let center = AnalysisCenter::new(AnalysisConfig::for_groups(32));
        for warmup in 0..2 {
            let frames = wire_frames(9 + warmup, 8);
            center.analyze_epoch_wire(&frames).expect("quorum");
        }
        let warm = center.scratch_capacities();
        assert!(warm[0] > 0, "fused matrix never materialised");
        assert!(warm[2] > 0, "unaligned rows never materialised");
        for epoch in 0..3 {
            let frames = wire_frames(10 + epoch, 8);
            center.analyze_epoch_wire(&frames).expect("quorum");
            assert_eq!(
                center.scratch_capacities(),
                warm,
                "scratch regrew on steady-state epoch {epoch}"
            );
        }
    }

    /// Per-stage timings are populated and consistent.
    #[test]
    fn timings_are_populated() {
        let report = run_epoch(11, 8, 0, 10, false);
        let t = report.timings;
        assert!(t.total_ns > 0, "total_ns empty");
        assert!(t.sweep_ns > 0, "sweep_ns empty");
        assert!(
            t.fuse_ns + t.screen_ns + t.sweep_ns <= t.total_ns,
            "stages {t:?} exceed the total"
        );
    }

    /// The wire ingest path: one truncated frame and one garbage frame
    /// are excluded as wire faults; the rest analyse normally.
    #[test]
    fn wire_ingest_excludes_undecodable_frames() {
        let mut r = StdRng::seed_from_u64(6);
        let mcfg = MonitorConfig::small(7, 1 << 12, 4);
        let bg = BackgroundConfig {
            packets: 300,
            flows: 80,
            zipf_exponent: 1.0,
            size_mix: SizeMix::constant(536),
        };
        let mut frames: Vec<Vec<u8>> = (0..6)
            .map(|id| {
                let traffic = gen::generate_epoch(&mut r, &bg);
                let mut mp = MonitoringPoint::new(id, &mcfg);
                mp.observe_all(&traffic);
                mp.finish_epoch()
                    .encode_wire()
                    .expect("bundle fits the wire format")
                    .to_vec()
            })
            .collect();
        let cut = frames[2].len() / 2;
        frames[2].truncate(cut);
        frames[4] = vec![0xAB; 40];

        let report = AnalysisCenter::new(AnalysisConfig::for_groups(24))
            .analyze_epoch_wire(&frames)
            .expect("four surviving frames are a quorum");
        assert_eq!(report.routers, 4);
        assert_eq!(report.ingest.accepted, vec![0, 1, 3, 5]);
        assert_eq!(report.ingest.excluded.len(), 2);
        for e in &report.ingest.excluded {
            assert_eq!(e.router_id, None);
            assert!(matches!(e.fault, RouterFault::Wire(_)), "{:?}", e.fault);
        }
    }

    /// A panic inside a pipeline (here: mismatched bitmap widths fed to
    /// `analyze_aligned` directly, which asserts mid-fusion) unwinds with
    /// the checked-out scratch, dropping it instead of poisoning any
    /// lock. The centre must keep analysing — the next epoch simply
    /// checks a fresh scratch out of the pool.
    #[test]
    fn panicked_epoch_drops_its_scratch_and_the_centre_keeps_serving() {
        use std::panic::{catch_unwind, AssertUnwindSafe};

        let mut r = StdRng::seed_from_u64(13);
        let mcfg_a = MonitorConfig::small(7, 1 << 12, 4);
        let mcfg_b = MonitorConfig::small(7, 1 << 10, 4);
        let bg = BackgroundConfig {
            packets: 200,
            flows: 50,
            zipf_exponent: 1.0,
            size_mix: SizeMix::constant(536),
        };
        let mk = |id: usize, cfg: &MonitorConfig, r: &mut StdRng| {
            let traffic = gen::generate_epoch(r, &bg);
            let mut mp = MonitoringPoint::new(id, cfg);
            mp.observe_all(&traffic);
            mp.finish_epoch()
        };
        let mismatched = vec![mk(0, &mcfg_a, &mut r), mk(1, &mcfg_b, &mut r)];
        let center = AnalysisCenter::new(AnalysisConfig::for_groups(8));
        let panicked =
            catch_unwind(AssertUnwindSafe(|| center.analyze_aligned(&mismatched))).is_err();
        assert!(
            panicked,
            "mismatched widths should have tripped the fuse assert"
        );

        // The panicking epoch's scratch is gone; every entry point must
        // still work on a freshly pooled scratch. (Two routers × 4
        // groups matches the centre's for_groups(8).)
        let clean: Vec<RouterDigest> = (0..2).map(|id| mk(id, &mcfg_a, &mut r)).collect();
        let report = center
            .analyze_epoch(&clean)
            .expect("centre must keep serving after a panicked epoch");
        assert_eq!(report.routers, 2);
        let _ = center.scratch_capacities();
    }

    /// Chunked transport delivery feeding `analyze_epoch_collected` must
    /// agree verdict-for-verdict with the direct wire path on the same
    /// frames.
    #[test]
    fn collected_and_wire_paths_agree() {
        use crate::session::{CollectorConfig, EpochCollector};
        use crate::transport::chunk_bundle;

        let frames = wire_frames(21, 6);
        let center = AnalysisCenter::new(AnalysisConfig::for_groups(24));
        let via_wire = center.analyze_epoch_wire(&frames).expect("quorum");

        // Transport epoch 1 (the chunk envelopes' id); the bundles' own
        // epoch ids only need to agree among themselves.
        let mut coll = EpochCollector::new(
            1,
            (0..6).map(|r| r as u64),
            CollectorConfig::default(),
            3,
            0,
        );
        for (router, frame) in frames.iter().enumerate() {
            for chunk in chunk_bundle(router as u64, 1, frame, 512) {
                coll.offer(&chunk, 0);
            }
        }
        assert!(coll.ready(0));
        let epoch = coll.finalize(0);
        let via_transport = center.analyze_epoch_collected(&epoch).expect("quorum");

        assert_eq!(via_transport.routers, via_wire.routers);
        assert_eq!(via_transport.ingest, via_wire.ingest);
        assert_eq!(via_transport.aligned.found, via_wire.aligned.found);
        assert_eq!(
            via_transport.aligned.signature_indices,
            via_wire.aligned.signature_indices
        );
        assert_eq!(via_transport.unaligned.alarm, via_wire.unaligned.alarm);
        assert_eq!(
            via_transport.unaligned.largest_component,
            via_wire.unaligned.largest_component
        );
        assert_eq!(
            via_transport.transport.chunks_received,
            epoch.stats.chunks_received
        );
        assert!(via_transport.transport.chunks_received > frames.len() as u64);
        assert_eq!(via_wire.transport, Default::default());
    }

    /// Transport exclusions flow into the ingest accounting and count
    /// against quorum exactly like content exclusions.
    #[test]
    fn transport_exclusions_join_ingest_accounting() {
        use crate::session::{CollectorConfig, EpochCollector, StragglerPolicy};
        use crate::transport::chunk_bundle;

        let frames = wire_frames(22, 6);
        let ccfg = CollectorConfig {
            straggler: StragglerPolicy::Deadline,
            ..Default::default()
        };
        let mut coll = EpochCollector::new(1, (0..6).map(|r| r as u64), ccfg, 3, 0);
        // Router 4 never completes: only its first chunk arrives.
        for (router, frame) in frames.iter().enumerate() {
            let chunks = chunk_bundle(router as u64, 1, frame, 512);
            let keep = if router == 4 { 1 } else { chunks.len() };
            for chunk in &chunks[..keep] {
                coll.offer(chunk, 0);
            }
        }
        let deadline = coll.deadline();
        let epoch = coll.finalize(deadline);
        let center = AnalysisCenter::new(AnalysisConfig::for_groups(24));
        let report = center.analyze_epoch_collected(&epoch).expect("quorum of 5");
        assert_eq!(report.routers, 5);
        assert_eq!(report.ingest.submitted, 6);
        assert_eq!(report.ingest.excluded.len(), 1);
        let e = &report.ingest.excluded[0];
        assert_eq!(e.router_id, Some(4));
        assert!(
            matches!(e.fault, RouterFault::TimedOut { received: 1, .. }),
            "{:?}",
            e.fault
        );
        assert!(report.ingest.is_degraded());

        // With min_quorum 6 the same epoch is a typed error.
        let strict = AnalysisCenter::new(AnalysisConfig::for_groups(24).with_min_quorum(6));
        match strict.analyze_epoch_collected(&epoch) {
            Err(IngestError::QuorumTooSmall { required, report }) => {
                assert_eq!(required, 6);
                assert_eq!(report.accepted.len(), 5);
            }
            other => panic!("expected QuorumTooSmall, got {other:?}"),
        }
    }

    /// Aggregated ingest is detection-equivalent to flat ingest: the
    /// same leaf frames routed through three aggregate bundles must give
    /// byte-identical aligned and unaligned verdicts.
    #[test]
    fn aggregated_and_flat_ingest_agree_byte_for_byte() {
        use crate::aggregate::AggregateBundle;

        let frames = wire_frames(31, 12);
        let center = AnalysisCenter::new(AnalysisConfig::for_groups(48));
        let flat = center
            .analyze_epoch_wire(&frames)
            .expect("12 clean frames form a quorum");

        let bundles: Vec<Vec<u8>> = frames
            .chunks(4)
            .enumerate()
            .map(|(agg, chunk)| {
                let child_frames: Vec<(u64, Vec<u8>)> = chunk
                    .iter()
                    .enumerate()
                    .map(|(i, f)| ((agg * 4 + i) as u64, f.clone()))
                    .collect();
                AggregateBundle::assemble(900 + agg as u64, 0, 1, child_frames, Vec::new())
                    .encode_wire()
            })
            .collect();
        let tiered = center
            .analyze_epoch_aggregated(&bundles)
            .expect("same 12 leaves through 3 bundles");

        assert_eq!(tiered.routers, 12);
        assert_eq!(tiered.ingest.submitted, 12, "quorum counts leaves");
        assert_eq!(tiered.aligned.found, flat.aligned.found);
        assert_eq!(tiered.aligned.routers, flat.aligned.routers);
        assert_eq!(
            tiered.aligned.signature_indices,
            flat.aligned.signature_indices
        );
        assert_eq!(tiered.aligned.content_packets, flat.aligned.content_packets);
        assert_eq!(tiered.unaligned.alarm, flat.unaligned.alarm);
        assert_eq!(
            tiered.unaligned.largest_component,
            flat.unaligned.largest_component
        );
        assert_eq!(
            tiered.unaligned.suspected_routers,
            flat.unaligned.suspected_routers
        );
        assert_eq!(
            tiered.unaligned.suspected_groups,
            flat.unaligned.suspected_groups
        );
    }

    /// Cross-level accounting: a child excluded at an aggregator and an
    /// undecodable bundle both surface at the centre as `AtLevel` faults
    /// with the right level and aggregator, and quorum is judged over
    /// reachable leaves, not bundles.
    #[test]
    fn aggregated_ingest_composes_exclusions_across_levels() {
        use crate::aggregate::{AggregateBundle, ChildExclusion};

        let frames = wire_frames(32, 6);
        let good = AggregateBundle::assemble(
            1000,
            0,
            1,
            frames[..4]
                .iter()
                .enumerate()
                .map(|(i, f)| (i as u64, f.clone()))
                .collect(),
            vec![ChildExclusion {
                router_id: 4,
                fault: RouterFault::TimedOut {
                    received: 2,
                    total: 5,
                },
            }],
        )
        .encode_wire();
        let garbage = vec![0x55u8; 80];

        let center = AnalysisCenter::new(AnalysisConfig::for_groups(24));
        let report = center
            .analyze_epoch_aggregated(&[good.clone(), garbage.clone()])
            .expect("four surviving leaves are a quorum");
        // 4 delivered leaves + 1 child exclusion + 1 dead bundle.
        assert_eq!(report.ingest.submitted, 6);
        assert_eq!(report.routers, 4);
        assert_eq!(report.ingest.excluded.len(), 2);
        let timed = &report.ingest.excluded[0];
        assert_eq!(timed.router_id, Some(4));
        assert_eq!(timed.fault.kind(), "timed_out", "kind survives the wrap");
        assert_eq!(timed.fault.level(), 1);
        match &timed.fault {
            RouterFault::AtLevel {
                level: 1,
                aggregator_id: Some(1000),
                fault,
            } => assert!(matches!(
                **fault,
                RouterFault::TimedOut {
                    received: 2,
                    total: 5
                }
            )),
            other => panic!("expected AtLevel wrap, got {other:?}"),
        }
        let dead = &report.ingest.excluded[1];
        assert_eq!(dead.router_id, None);
        assert_eq!(dead.fault.kind(), "wire");
        assert!(
            matches!(
                dead.fault,
                RouterFault::AtLevel {
                    level: 1,
                    aggregator_id: None,
                    ..
                }
            ),
            "{:?}",
            dead.fault
        );

        // Leaf-based quorum: 5 reachable leaves is not enough when the
        // floor is 5 delivered... the 4 survivors miss a floor of 5.
        let strict = AnalysisCenter::new(AnalysisConfig::for_groups(24).with_min_quorum(5));
        match strict.analyze_epoch_aggregated(&[good, garbage]) {
            Err(IngestError::QuorumTooSmall { required, report }) => {
                assert_eq!(required, 5);
                assert_eq!(report.accepted.len(), 4);
                assert_eq!(report.submitted, 6);
            }
            other => panic!("expected QuorumTooSmall, got {other:?}"),
        }
    }

    /// The collected aggregated path: an aggregator the upstream hop
    /// lost entirely becomes one `AtLevel` exclusion carrying its id.
    #[test]
    fn lost_aggregator_surfaces_with_its_id() {
        use crate::aggregate::AggregateBundle;
        use crate::session::{CollectorConfig, EpochCollector};
        use crate::transport::chunk_bundle;

        let frames = wire_frames(33, 4);
        let bundle = AggregateBundle::assemble(
            700,
            0,
            1,
            frames
                .iter()
                .enumerate()
                .map(|(i, f)| (i as u64, f.clone()))
                .collect(),
            Vec::new(),
        )
        .encode_wire();

        // Upstream hop expects aggregators 700 and 701; only 700 ships.
        let mut coll = EpochCollector::new(0, [700u64, 701], CollectorConfig::default(), 9, 0);
        for chunk in chunk_bundle(700, 0, &bundle, 4096) {
            coll.offer(&chunk, 0);
        }
        let deadline = coll.deadline();
        let epoch = coll.finalize(deadline);

        let center = AnalysisCenter::new(AnalysisConfig::for_groups(16));
        let report = center
            .analyze_epoch_aggregated_collected(&epoch)
            .expect("four leaves from the surviving aggregator");
        assert_eq!(report.routers, 4);
        assert_eq!(report.ingest.submitted, 5);
        assert_eq!(report.ingest.excluded.len(), 1);
        let e = &report.ingest.excluded[0];
        assert_eq!(e.router_id, Some(701));
        match &e.fault {
            RouterFault::AtLevel {
                level: 1,
                aggregator_id: Some(701),
                fault,
            } => assert!(matches!(**fault, RouterFault::TimedOut { .. }), "{fault:?}"),
            other => panic!("expected AtLevel timeout, got {other:?}"),
        }
        assert!(report.transport.chunks_received > 0, "stats not stamped");
    }

    /// Sketch-carrying bundles seed the aligned search, but seeding is
    /// advisory: a centre with seeding off produces byte-identical
    /// verdicts, while both account the artifacts and the seeded one
    /// derives columns. The `sketch_fuse` stage records a span either way.
    #[test]
    fn sketch_seeding_is_advisory() {
        use crate::monitor::SketchSpec;
        let mut r = StdRng::seed_from_u64(71);
        let mcfg = MonitorConfig::small(7, 1 << 14, 4).with_sketch(SketchSpec::heavy_content(32));
        // One single-packet object replayed 40× per router: a genuinely
        // heavy content-index key, so the fused top-k seeds its column.
        let heavy = ContentObject::random_with_packets(&mut r, 1, 536);
        let heavy_plant = Planting::aligned(heavy, 536);
        let obj = ContentObject::random_with_packets(&mut r, 30, 536);
        let plant = Planting::aligned(obj, 536);
        let bg = BackgroundConfig {
            packets: 800,
            flows: 200,
            zipf_exponent: 1.0,
            size_mix: SizeMix::constant(536),
        };
        let routers = 24;
        let mut digests = Vec::new();
        for id in 0..routers {
            let mut traffic = gen::generate_epoch(&mut r, &bg);
            if id < 20 {
                plant.plant_into(&mut r, &mut traffic);
            }
            for _ in 0..40 {
                heavy_plant.plant_into(&mut r, &mut traffic);
            }
            let mut mp = MonitoringPoint::new(id, &mcfg);
            mp.observe_all(&traffic);
            digests.push(mp.finish_epoch());
        }
        assert!(
            digests[0].sketch_payload().is_some(),
            "sketch not collected"
        );

        let mut acfg = AnalysisConfig::for_groups(routers * 4);
        acfg.search.n_prime = 400;
        acfg.search.hopefuls = 300;
        let on = AnalysisCenter::new(acfg.clone());
        let off = AnalysisCenter::new(acfg.with_sketch_seed(false));
        let a = on.analyze_epoch(&digests).expect("quorum");
        let b = off.analyze_epoch(&digests).expect("quorum");
        assert!(a.aligned.found, "planted content missed");
        assert_eq!(a.aligned.found, b.aligned.found);
        assert_eq!(a.aligned.routers, b.aligned.routers);
        assert_eq!(a.aligned.signature_indices, b.aligned.signature_indices);
        assert_eq!(a.aligned.content_packets, b.aligned.content_packets);
        assert_eq!(a.unaligned.alarm, b.unaligned.alarm);
        assert_eq!(a.unaligned.largest_component, b.unaligned.largest_component);
        assert_eq!(a.unaligned.suspected_groups, b.unaligned.suspected_groups);

        assert_eq!(a.sketch.artifacts, routers);
        assert_eq!(a.sketch.merged, routers);
        assert_eq!(a.sketch.skipped, 0);
        assert!(a.sketch.payload_bytes > 0);
        assert!(!a.sketch.seed_columns.is_empty(), "no seed columns derived");
        assert_eq!(b.sketch.artifacts, routers, "accounting survives seed-off");
        assert!(b.sketch.seed_columns.is_empty(), "seed-off centre seeded");

        let snap = on.metrics();
        assert!(
            snap.gauge("epoch_stage_ns{pipeline=aligned,stage=sketch_fuse}")
                .unwrap_or(0)
                >= 1,
            "sketch_fuse stage never recorded"
        );
        assert_eq!(snap.counter("sketch_artifacts_total"), Some(routers as u64));
        assert_eq!(snap.counter("sketch_merged_total"), Some(routers as u64));
        assert!(snap.gauge("sketch_seed_columns").unwrap_or(0) > 0);
        assert!(snap.counter("search_candidates_total").unwrap_or(0) > 0);
        assert!(snap.gauge("search_pairs_scanned").unwrap_or(0) > 0);
    }

    /// The incremental test-graph engine must be invisible in the
    /// results: across epochs of persisting traffic with partial churn,
    /// a centre with incremental maintenance on and one with it off
    /// (full prescreened rebuild each epoch — itself identical to the
    /// all-pairs oracle) produce byte-identical unaligned reports, while
    /// the incremental centre pays the full build only once.
    #[test]
    fn incremental_and_rebuild_centres_agree_across_epochs() {
        let mut r = StdRng::seed_from_u64(41);
        let mcfg = MonitorConfig::small(7, 1 << 12, 4);
        let bg = BackgroundConfig {
            packets: 300,
            flows: 80,
            zipf_exponent: 1.0,
            size_mix: SizeMix::constant(536),
        };
        let routers = 8;
        let mut digests: Vec<RouterDigest> = (0..routers)
            .map(|id| {
                let traffic = gen::generate_epoch(&mut r, &bg);
                let mut mp = MonitoringPoint::new(id, &mcfg);
                mp.observe_all(&traffic);
                mp.finish_epoch()
            })
            .collect();

        let mut inc_cfg = AnalysisConfig::for_groups(routers * 4);
        inc_cfg.ugraph.audit_every = 2;
        let mut full_cfg = inc_cfg.clone();
        full_cfg.ugraph.incremental = false;
        let inc = AnalysisCenter::new(inc_cfg);
        let full = AnalysisCenter::new(full_cfg);

        for epoch in 0..5u64 {
            // Churn one router per epoch; the rest persist verbatim.
            let id = epoch as usize % routers;
            let traffic = gen::generate_epoch(&mut r, &bg);
            let mut mp = MonitoringPoint::new(id, &mcfg);
            mp.observe_all(&traffic);
            digests[id] = mp.finish_epoch();
            for d in &mut digests {
                d.epoch_id = epoch;
            }
            let a = inc.analyze_epoch(&digests).expect("quorum").unaligned;
            let b = full.analyze_epoch(&digests).expect("quorum").unaligned;
            assert_eq!(a.alarm, b.alarm, "epoch {epoch}");
            assert_eq!(a.largest_component, b.largest_component, "epoch {epoch}");
            assert_eq!(a.suspected_groups, b.suspected_groups, "epoch {epoch}");
            assert_eq!(a.suspected_routers, b.suspected_routers, "epoch {epoch}");
        }

        let snap = inc.metrics();
        assert_eq!(
            snap.counter("graph_full_rebuilds_total"),
            Some(1),
            "only the cold epoch may rebuild from scratch"
        );
        assert_eq!(
            snap.counter("graph_audit_runs_total"),
            Some(2),
            "audit cadence 2 over 5 epochs"
        );
        assert!(snap.counter("pairs_screened_total").is_some());
        assert!(snap.counter("pairs_exact_total").unwrap_or(0) > 0);
        assert!(snap.gauge("graph_edges_live").is_some());
        assert!(snap.gauge("graph_groups_changed").is_some());
        // The delta epochs re-tested far fewer pairs than the full-build
        // centre paid for the same traffic.
        let full_snap = full.metrics();
        let inc_pairs = snap.counter("pairs_exact_total").unwrap()
            + snap.counter("pairs_screened_total").unwrap();
        let full_pairs = full_snap.counter("pairs_exact_total").unwrap()
            + full_snap.counter("pairs_screened_total").unwrap();
        assert!(
            inc_pairs * 2 < full_pairs,
            "incremental engine did {inc_pairs} pair visits vs {full_pairs} for full rebuilds"
        );
        assert_eq!(full_snap.counter("graph_full_rebuilds_total"), Some(5));
    }
}
