//! Per-router transport sessions and the epoch collector — sequenced,
//! acked, deadline-bounded delivery of chunked digest bundles, with
//! crash-recoverable progress.
//!
//! The paper ships one digest per router per epoch over a real network;
//! PR 2/3 validated digest *content* while delivery stayed a perfect
//! in-memory batch. This module models delivery:
//!
//! ```text
//!                 chunk ok                     all chunks held
//!   ┌───────┐  ───────────►  ┌───────────┐  ─────────────────►  ┌──────────┐
//!   │ Empty │                │ Receiving │                      │ Complete │
//!   └───────┘                └───────────┘                      └──────────┘
//!       │    timer fires → RetransmitRequest, attempts+1,  │
//!       │    backoff = min(base·2^attempts, max) + jitter   │
//!       │                                                   ▼
//!       │     retries exhausted / deadline expired     ┌─────────┐
//!       └─────────────────────────────────────────────►│ Failed  │
//!              (TimedOut | ChecksumMismatch |          └─────────┘
//!               Incomplete at finalize)
//! ```
//!
//! * [`RouterSession`] reassembles one router's chunk frames
//!   (duplicate/overlap-safe), exposes a cumulative ack, and drives a
//!   capped-exponential-backoff retransmit timer with deterministic
//!   seeded jitter.
//! * [`EpochCollector`] owns one session per expected router, routes
//!   incoming frames (CRC-failed frames get a salvage-NACK when their
//!   header survives), applies the epoch deadline and
//!   [`StragglerPolicy`], and finalizes into a [`CollectedEpoch`] whose
//!   exclusions ([`RouterFault::TimedOut`] /
//!   [`RouterFault::ChecksumMismatch`] / [`RouterFault::Incomplete`])
//!   join the regular ingest accounting.
//! * [`EpochCollector::checkpoint`] serializes collector progress (epoch
//!   id, config fingerprint, per-router chunk bitmap + held payloads,
//!   CRC-32 trailer); [`EpochCollector::resume`] restores it after a
//!   centre restart, so an interrupted epoch continues instead of
//!   starting over — monitoring points keep a bounded resend buffer of
//!   their last epoch precisely so post-restart retransmit requests
//!   succeed.
//!
//! Time is a caller-supplied virtual tick (`u64`): the state machine
//! never reads a wall clock, so every test and simulation is exactly
//! reproducible.

use crate::ingest::{Exclusion, RouterFault};
use crate::report::TransportStats;
use crate::transport::{ChunkError, ChunkFrame, MAX_CHUNKS};
use dcs_hash::crc32::crc32;
use dcs_hash::Fnv1a;
use std::collections::BTreeMap;
use std::fmt;

/// Retransmit/backoff parameters of one router session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionConfig {
    /// Ticks before the first retransmit request fires.
    pub base_backoff: u64,
    /// Cap on the exponential backoff between requests.
    pub max_backoff: u64,
    /// Retransmit rounds before the session gives up.
    pub max_retries: u32,
    /// Upper bound (exclusive) on the deterministic per-request jitter;
    /// 0 disables jitter.
    pub jitter: u64,
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig {
            base_backoff: 8,
            max_backoff: 64,
            max_retries: 10,
            jitter: 4,
        }
    }
}

/// When the collector stops waiting for stragglers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StragglerPolicy {
    /// Wait until every session completes or gives up; the deadline is
    /// advisory only.
    WaitAll,
    /// Hold the epoch open until the deadline; finalize then if at least
    /// this many sessions completed, otherwise keep waiting until every
    /// session completes or gives up.
    Quorum(usize),
    /// Finalize at the deadline with whatever completed (early if
    /// everything did). The deadline is a hard arrival cutoff: a chunk
    /// offered at or after the deadline tick is late, whether or not
    /// `finalize` has run yet — acceptance at the boundary must not
    /// depend on the caller's offer/finalize ordering within the tick.
    Deadline,
}

/// Configuration of one epoch's collector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CollectorConfig {
    /// The epoch deadline, in ticks since the collector started.
    pub deadline: u64,
    /// What to do about routers still incomplete at the deadline.
    pub straggler: StragglerPolicy,
    /// Per-router retransmit/backoff parameters.
    pub session: SessionConfig,
}

impl Default for CollectorConfig {
    fn default() -> Self {
        CollectorConfig {
            deadline: 512,
            straggler: StragglerPolicy::Deadline,
            session: SessionConfig::default(),
        }
    }
}

impl CollectorConfig {
    /// FNV-1a fingerprint of the configuration, stored in checkpoints so
    /// a collector is never resumed under different delivery rules.
    fn fingerprint(&self, epoch_id: u64, routers: &[u64]) -> u64 {
        let mut h = Fnv1a::with_seed(0x1D_C5C0);
        h.update(&epoch_id.to_le_bytes());
        h.update(&self.deadline.to_le_bytes());
        let (tag, q) = match self.straggler {
            StragglerPolicy::WaitAll => (0u8, 0u64),
            StragglerPolicy::Quorum(q) => (1, q as u64),
            StragglerPolicy::Deadline => (2, 0),
        };
        h.update(&[tag]);
        h.update(&q.to_le_bytes());
        h.update(&self.session.base_backoff.to_le_bytes());
        h.update(&self.session.max_backoff.to_le_bytes());
        h.update(&self.session.max_retries.to_le_bytes());
        h.update(&self.session.jitter.to_le_bytes());
        for r in routers {
            h.update(&r.to_le_bytes());
        }
        h.finish()
    }
}

/// Which chunks a retransmit request asks for.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Missing {
    /// Everything — no chunk of the bundle has arrived yet, so the total
    /// is unknown.
    All,
    /// Specific chunk sequence numbers.
    Seqs(Vec<u32>),
}

/// One retransmit request, addressed to a monitoring point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetransmitRequest {
    /// The router whose chunks are missing.
    pub router_id: u64,
    /// The epoch being collected.
    pub epoch_id: u64,
    /// Which chunks to resend.
    pub missing: Missing,
}

/// What the collector did with one offered frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChunkDisposition {
    /// Accepted into the session's reassembly buffer. Carries the
    /// session's cumulative ack: every chunk below this seq is held.
    Accepted {
        /// The receiving router session.
        router_id: u64,
        /// Leading contiguous chunks now held.
        cumulative_ack: u32,
    },
    /// The session already held this chunk; absorbed.
    Duplicate {
        /// The receiving router session.
        router_id: u64,
    },
    /// CRC or envelope decode failed; dropped (and NACKed when the
    /// header salvaged).
    Corrupt,
    /// Decoded fine but for a different epoch, or after finalize.
    Late,
    /// Decoded fine but no session exists for that router this epoch.
    UnknownRouter {
        /// The unexpected router id.
        router_id: u64,
    },
    /// A declared `total` disagreed with what the session already
    /// learned, or exceeds the allocation cap; dropped.
    Inconsistent {
        /// The offending router session.
        router_id: u64,
    },
}

/// One router's reassembly state.
#[derive(Debug, Clone)]
pub struct RouterSession {
    router_id: u64,
    /// Declared chunk count, learned from the first accepted chunk.
    total: Option<u32>,
    /// Held payloads, indexed by seq; `None` = missing.
    chunks: Vec<Option<Vec<u8>>>,
    /// Held chunk count (= number of `Some` entries).
    received: usize,
    /// Retransmit rounds fired so far.
    attempts: u32,
    /// Next tick the retransmit timer fires.
    next_request_at: u64,
    /// No retransmit budget left; the session will never request again.
    gave_up: bool,
    /// Seqs whose frames failed CRC at least once (via salvage), still
    /// missing or since recovered.
    crc_failed_seqs: Vec<u32>,
}

impl RouterSession {
    fn new(router_id: u64, cfg: &SessionConfig, seed: u64, now: u64) -> Self {
        let mut s = RouterSession {
            router_id,
            total: None,
            chunks: Vec::new(),
            received: 0,
            attempts: 0,
            next_request_at: 0,
            gave_up: false,
            crc_failed_seqs: Vec::new(),
        };
        s.next_request_at = now
            .saturating_add(cfg.base_backoff)
            .saturating_add(s.jitter(cfg, seed, 0));
        s
    }

    /// Deterministic per-(router, attempt) jitter in `[0, cfg.jitter)`.
    fn jitter(&self, cfg: &SessionConfig, seed: u64, attempt: u32) -> u64 {
        if cfg.jitter == 0 {
            return 0;
        }
        let mut h = Fnv1a::with_seed(seed);
        h.update(&self.router_id.to_le_bytes());
        h.update(&attempt.to_le_bytes());
        h.finish() % cfg.jitter
    }

    /// The router this session reassembles.
    pub fn router_id(&self) -> u64 {
        self.router_id
    }

    /// Whether every chunk is held.
    pub fn is_complete(&self) -> bool {
        self.total.is_some_and(|t| self.received == t as usize)
    }

    /// Chunks held so far.
    pub fn received(&self) -> usize {
        self.received
    }

    /// Declared total, once learned.
    pub fn total(&self) -> Option<u32> {
        self.total
    }

    /// Whether the retransmit budget is exhausted.
    pub fn gave_up(&self) -> bool {
        self.gave_up
    }

    /// Cumulative ack: every chunk with seq below this is held. The
    /// receiver-side counterpart of TCP's cumulative acknowledgement —
    /// a sender may prune its resend buffer below this point.
    pub fn cumulative_ack(&self) -> u32 {
        self.chunks
            .iter()
            .take_while(|c| c.is_some())
            .count()
            .try_into()
            .expect("chunk count bounded by MAX_CHUNKS")
    }

    /// Still-missing chunk seqs (empty when complete or total unknown).
    pub fn missing(&self) -> Vec<u32> {
        self.chunks
            .iter()
            .enumerate()
            .filter_map(|(i, c)| c.is_none().then_some(i as u32))
            .collect()
    }

    /// Accepts one decoded chunk. Duplicates are absorbed; a `total`
    /// disagreeing with the learned one (or over the cap) is rejected.
    fn accept(&mut self, frame: &ChunkFrame<'_>) -> ChunkDisposition {
        match self.total {
            None => {
                if frame.total > MAX_CHUNKS {
                    return ChunkDisposition::Inconsistent {
                        router_id: self.router_id,
                    };
                }
                self.total = Some(frame.total);
                self.chunks.resize(frame.total as usize, None);
            }
            Some(t) if t != frame.total => {
                return ChunkDisposition::Inconsistent {
                    router_id: self.router_id,
                }
            }
            Some(_) => {}
        }
        let slot = &mut self.chunks[frame.seq as usize];
        if slot.is_some() {
            return ChunkDisposition::Duplicate {
                router_id: self.router_id,
            };
        }
        *slot = Some(frame.payload.to_vec());
        self.received += 1;
        self.crc_failed_seqs.retain(|&s| s != frame.seq);
        ChunkDisposition::Accepted {
            router_id: self.router_id,
            cumulative_ack: self.cumulative_ack(),
        }
    }

    /// Reassembles the full bundle; `None` unless complete.
    fn reassemble(&self) -> Option<Vec<u8>> {
        if !self.is_complete() {
            return None;
        }
        let mut bundle = Vec::with_capacity(
            self.chunks
                .iter()
                .map(|c| c.as_ref().map_or(0, Vec::len))
                .sum(),
        );
        for c in &self.chunks {
            bundle.extend_from_slice(c.as_ref().expect("complete session holds every chunk"));
        }
        Some(bundle)
    }

    /// Fires the retransmit timer if due, returning the request and
    /// scheduling the next firing with capped exponential backoff plus
    /// deterministic jitter.
    fn poll(&mut self, cfg: &SessionConfig, seed: u64, now: u64) -> Option<RetransmitRequest> {
        if self.is_complete() || self.gave_up || now < self.next_request_at {
            return None;
        }
        if self.attempts >= cfg.max_retries {
            self.gave_up = true;
            return None;
        }
        self.attempts += 1;
        let backoff = cfg
            .base_backoff
            .saturating_mul(1u64 << self.attempts.min(32))
            .min(cfg.max_backoff);
        self.next_request_at =
            now.saturating_add(backoff)
                .saturating_add(self.jitter(cfg, seed, self.attempts));
        let missing = match self.total {
            None => Missing::All,
            Some(_) => Missing::Seqs(self.missing()),
        };
        Some(RetransmitRequest {
            router_id: self.router_id,
            epoch_id: 0, // stamped by the collector
            missing,
        })
    }

    /// The exclusion fault for an incomplete session at finalize time.
    fn failure(&self, past_deadline: bool) -> RouterFault {
        let total = self.total.map_or(0, |t| t as usize);
        let unrecovered: Option<u32> = self
            .crc_failed_seqs
            .iter()
            .copied()
            .filter(|&s| self.chunks.get(s as usize).is_none_or(|c| c.is_none()))
            .min();
        if let Some(seq) = unrecovered {
            if self.gave_up || past_deadline {
                return RouterFault::ChecksumMismatch { seq };
            }
        }
        if past_deadline {
            RouterFault::TimedOut {
                received: self.received,
                total,
            }
        } else {
            RouterFault::Incomplete {
                received: self.received,
                total,
            }
        }
    }
}

/// One finalized epoch of transport: reassembled bundles in router order,
/// transport-level exclusions, and the delivery stats — ready for
/// [`AnalysisCenter::analyze_epoch_collected`](crate::center::AnalysisCenter::analyze_epoch_collected).
#[derive(Debug, Clone)]
pub struct CollectedEpoch {
    /// The collected epoch's id.
    pub epoch_id: u64,
    /// Sessions opened (= expected routers); the ingest `submitted`.
    pub submitted: usize,
    /// `(batch index, reassembled bundle bytes)` for every complete
    /// session, in router-id order. Batch index is the router's position
    /// in that order, so exclusions interleave coherently.
    pub frames: Vec<(usize, Vec<u8>)>,
    /// Transport-level exclusions (timed out, checksum-dead, incomplete).
    pub exclusions: Vec<Exclusion>,
    /// Delivery accounting for the epoch.
    pub stats: TransportStats,
}

/// Errors from decoding a collector checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// Buffer too short for the declared structure.
    Truncated,
    /// Unexpected magic bytes.
    BadMagic([u8; 4]),
    /// Unsupported checkpoint version.
    BadVersion(u8),
    /// The CRC-32 trailer disagrees with the checkpoint bytes.
    ChecksumMismatch,
    /// Structurally impossible field.
    Malformed(&'static str),
    /// The checkpoint was written under a different collector
    /// configuration or router set.
    ConfigMismatch {
        /// Fingerprint stored in the checkpoint.
        stored: u64,
        /// Fingerprint of the configuration passed to `resume`.
        expected: u64,
    },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Truncated => write!(f, "checkpoint truncated"),
            CheckpointError::BadMagic(m) => write!(f, "bad checkpoint magic {m:02x?}"),
            CheckpointError::BadVersion(v) => write!(f, "unsupported checkpoint version {v}"),
            CheckpointError::ChecksumMismatch => write!(f, "checkpoint checksum mismatch"),
            CheckpointError::Malformed(what) => write!(f, "malformed checkpoint: {what}"),
            CheckpointError::ConfigMismatch { stored, expected } => write!(
                f,
                "checkpoint config fingerprint {stored:#018x} does not match {expected:#018x}"
            ),
        }
    }
}

impl std::error::Error for CheckpointError {}

/// Magic for collector checkpoints (`b"DCSK"`).
pub const CHECKPOINT_MAGIC: [u8; 4] = *b"DCSK";
const CHECKPOINT_VERSION: u8 = 1;

/// Collects one epoch's chunk frames across every expected router.
#[derive(Debug)]
pub struct EpochCollector {
    epoch_id: u64,
    cfg: CollectorConfig,
    seed: u64,
    started_at: u64,
    sessions: BTreeMap<u64, RouterSession>,
    stats: TransportStats,
    finalized: bool,
}

impl EpochCollector {
    /// Opens a collector for `epoch_id` expecting one bundle from each of
    /// `routers`. `seed` drives the deterministic retransmit jitter;
    /// `now` is the current virtual tick (timers and the deadline are
    /// relative to it).
    pub fn new(
        epoch_id: u64,
        routers: impl IntoIterator<Item = u64>,
        cfg: CollectorConfig,
        seed: u64,
        now: u64,
    ) -> Self {
        let sessions: BTreeMap<u64, RouterSession> = routers
            .into_iter()
            .map(|r| (r, RouterSession::new(r, &cfg.session, seed, now)))
            .collect();
        EpochCollector {
            epoch_id,
            cfg,
            seed,
            started_at: now,
            sessions,
            stats: TransportStats::default(),
            finalized: false,
        }
    }

    /// The epoch being collected.
    pub fn epoch_id(&self) -> u64 {
        self.epoch_id
    }

    /// The absolute tick of the epoch deadline (saturating: a deadline
    /// near `u64::MAX` pins to "never expires" instead of wrapping into
    /// the past).
    pub fn deadline(&self) -> u64 {
        self.started_at.saturating_add(self.cfg.deadline)
    }

    /// The tick this collector started (or resumed) at.
    pub fn started_at(&self) -> u64 {
        self.started_at
    }

    /// Sessions that hold their complete bundle.
    pub fn complete_sessions(&self) -> usize {
        self.sessions.values().filter(|s| s.is_complete()).count()
    }

    /// Read access to one router's session.
    pub fn session(&self, router_id: u64) -> Option<&RouterSession> {
        self.sessions.get(&router_id)
    }

    /// Iterates every router session in router-id order (socket drivers
    /// use this to gauge the reassembly backlog).
    pub fn sessions(&self) -> impl Iterator<Item = &RouterSession> {
        self.sessions.values()
    }

    /// Delivery accounting so far.
    pub fn stats(&self) -> TransportStats {
        self.stats
    }

    /// Offers one frame as it arrives off the channel. CRC-failed frames
    /// are dropped (counted; salvage-NACKed into the session's fast
    /// retransmit when the header survived); wrong-epoch and
    /// post-finalize frames count as late.
    pub fn offer(&mut self, frame: &[u8], now: u64) -> ChunkDisposition {
        match ChunkFrame::decode(frame) {
            Err(e) => {
                self.stats.corrupt_chunks += 1;
                if matches!(e, ChunkError::ChecksumMismatch { .. }) {
                    if let Some((router_id, epoch_id, seq)) = ChunkFrame::salvage_header(frame) {
                        if epoch_id == self.epoch_id && !self.finalized {
                            if let Some(s) = self.sessions.get_mut(&router_id) {
                                // Fast NACK: pull the timer forward so the
                                // next poll re-requests immediately, and
                                // remember the seq for fault attribution.
                                if !s.crc_failed_seqs.contains(&seq) {
                                    s.crc_failed_seqs.push(seq);
                                }
                                if !s.is_complete() && !s.gave_up {
                                    s.next_request_at = s.next_request_at.min(now);
                                }
                            }
                        }
                    }
                }
                ChunkDisposition::Corrupt
            }
            Ok((chunk, _)) => {
                if self.finalized || chunk.epoch_id != self.epoch_id {
                    self.stats.late_chunks += 1;
                    return ChunkDisposition::Late;
                }
                // Under the Deadline policy the deadline is a hard arrival
                // cutoff: `ready()` and `finalize()` both treat
                // `now >= deadline` as expired, so accepting a chunk at the
                // boundary tick would make the outcome depend on whether
                // the driver finalized before or after offering it.
                // WaitAll/Quorum keep the advisory-deadline semantics
                // (they legitimately accept past-deadline stragglers).
                if matches!(self.cfg.straggler, StragglerPolicy::Deadline) && now >= self.deadline()
                {
                    self.stats.late_chunks += 1;
                    return ChunkDisposition::Late;
                }
                let Some(session) = self.sessions.get_mut(&chunk.router_id) else {
                    self.stats.late_chunks += 1;
                    return ChunkDisposition::UnknownRouter {
                        router_id: chunk.router_id,
                    };
                };
                let disposition = session.accept(&chunk);
                match disposition {
                    ChunkDisposition::Accepted { .. } => self.stats.chunks_received += 1,
                    ChunkDisposition::Duplicate { .. } => self.stats.duplicate_chunks += 1,
                    ChunkDisposition::Inconsistent { .. } => self.stats.corrupt_chunks += 1,
                    _ => {}
                }
                disposition
            }
        }
    }

    /// Fires due retransmit timers, returning the requests to route back
    /// to the monitoring points. Call once per tick (or after a batch of
    /// arrivals).
    pub fn poll(&mut self, now: u64) -> Vec<RetransmitRequest> {
        if self.finalized {
            return Vec::new();
        }
        let mut out = Vec::new();
        for s in self.sessions.values_mut() {
            if let Some(mut req) = s.poll(&self.cfg.session, self.seed, now) {
                req.epoch_id = self.epoch_id;
                self.stats.retransmits += 1;
                out.push(req);
            }
        }
        out
    }

    /// Whether the straggler policy says to stop waiting at `now`.
    pub fn ready(&self, now: u64) -> bool {
        let complete = self.complete_sessions();
        if complete == self.sessions.len() {
            return true;
        }
        let decided = self.sessions.values().all(|s| s.is_complete() || s.gave_up);
        match self.cfg.straggler {
            StragglerPolicy::WaitAll => decided,
            StragglerPolicy::Quorum(q) => {
                (now >= self.deadline() && complete >= q) || (decided && now >= self.deadline())
            }
            StragglerPolicy::Deadline => now >= self.deadline(),
        }
    }

    /// Finalizes the epoch: complete sessions yield their reassembled
    /// bundles (in router-id order), incomplete ones become typed
    /// transport exclusions. Frames offered afterwards count as late.
    pub fn finalize(&mut self, now: u64) -> CollectedEpoch {
        self.finalized = true;
        let past_deadline = now >= self.deadline();
        let mut frames = Vec::new();
        let mut exclusions = Vec::new();
        for (index, s) in self.sessions.values().enumerate() {
            match s.reassemble() {
                Some(bundle) => frames.push((index, bundle)),
                None => exclusions.push(Exclusion {
                    index,
                    router_id: Some(s.router_id as usize),
                    fault: s.failure(past_deadline),
                }),
            }
        }
        CollectedEpoch {
            epoch_id: self.epoch_id,
            submitted: self.sessions.len(),
            frames,
            exclusions,
            stats: self.stats,
        }
    }

    /// Serializes collector progress — epoch id, config fingerprint, and
    /// each session's received-chunk bitmap plus held payloads — into a
    /// compact CRC-trailed checkpoint. Retransmit timers are *not*
    /// persisted: a resumed collector restarts its retry schedule, which
    /// is exactly what a rebooted centre should do.
    pub fn checkpoint(&self) -> Vec<u8> {
        let routers: Vec<u64> = self.sessions.keys().copied().collect();
        let mut buf = Vec::new();
        buf.extend_from_slice(&CHECKPOINT_MAGIC);
        buf.push(CHECKPOINT_VERSION);
        buf.extend_from_slice(&self.epoch_id.to_le_bytes());
        buf.extend_from_slice(&self.cfg.fingerprint(self.epoch_id, &routers).to_le_bytes());
        let stats = [
            self.stats.chunks_received,
            self.stats.retransmits,
            self.stats.late_chunks,
            self.stats.duplicate_chunks,
            self.stats.corrupt_chunks,
            self.stats.checkpoint_resumes,
        ];
        for s in stats {
            buf.extend_from_slice(&s.to_le_bytes());
        }
        buf.extend_from_slice(&(self.sessions.len() as u32).to_le_bytes());
        for s in self.sessions.values() {
            buf.extend_from_slice(&s.router_id.to_le_bytes());
            buf.extend_from_slice(&s.total.unwrap_or(0).to_le_bytes());
            buf.extend_from_slice(&(s.crc_failed_seqs.len() as u32).to_le_bytes());
            for &seq in &s.crc_failed_seqs {
                buf.extend_from_slice(&seq.to_le_bytes());
            }
            if let Some(total) = s.total {
                // Received-chunk bitmap, then each held payload in seq
                // order (length-prefixed).
                let nbytes = (total as usize).div_ceil(8);
                let mut bitmap = vec![0u8; nbytes];
                for (i, c) in s.chunks.iter().enumerate() {
                    if c.is_some() {
                        bitmap[i / 8] |= 1 << (i % 8);
                    }
                }
                buf.extend_from_slice(&bitmap);
                for c in s.chunks.iter().flatten() {
                    buf.extend_from_slice(&(c.len() as u32).to_le_bytes());
                    buf.extend_from_slice(c);
                }
            }
        }
        let crc = crc32(&buf);
        buf.extend_from_slice(&crc.to_le_bytes());
        buf
    }

    /// Restores a collector from [`Self::checkpoint`] bytes. `cfg` and
    /// the implied router set must fingerprint-match the checkpoint;
    /// retransmit timers restart at `now`, and `checkpoint_resumes` is
    /// incremented so the recovery is visible in the epoch's stats.
    pub fn resume(
        bytes: &[u8],
        cfg: CollectorConfig,
        seed: u64,
        now: u64,
    ) -> Result<EpochCollector, CheckpointError> {
        if bytes.len() < 4 {
            return Err(CheckpointError::Truncated);
        }
        if bytes[..4] != CHECKPOINT_MAGIC {
            let mut m = [0u8; 4];
            m.copy_from_slice(&bytes[..4]);
            return Err(CheckpointError::BadMagic(m));
        }
        if bytes.len() < 5 + 8 + 8 + 48 + 4 + 4 {
            return Err(CheckpointError::Truncated);
        }
        if bytes[4] != CHECKPOINT_VERSION {
            return Err(CheckpointError::BadVersion(bytes[4]));
        }
        let body = &bytes[..bytes.len() - 4];
        let declared =
            u32::from_le_bytes(bytes[bytes.len() - 4..].try_into().expect("4-byte slice"));
        if crc32(body) != declared {
            return Err(CheckpointError::ChecksumMismatch);
        }

        let mut off = 5usize;
        fn take<'b>(
            body: &'b [u8],
            off: &mut usize,
            n: usize,
        ) -> Result<&'b [u8], CheckpointError> {
            if *off + n > body.len() {
                return Err(CheckpointError::Truncated);
            }
            let s = &body[*off..*off + n];
            *off += n;
            Ok(s)
        }
        let get_u64 = |s: &[u8]| u64::from_le_bytes(s.try_into().expect("8-byte slice"));
        let get_u32 = |s: &[u8]| u32::from_le_bytes(s.try_into().expect("4-byte slice"));

        let epoch_id = get_u64(take(body, &mut off, 8)?);
        let stored_fingerprint = get_u64(take(body, &mut off, 8)?);
        let mut stats = TransportStats {
            chunks_received: get_u64(take(body, &mut off, 8)?),
            retransmits: get_u64(take(body, &mut off, 8)?),
            late_chunks: get_u64(take(body, &mut off, 8)?),
            duplicate_chunks: get_u64(take(body, &mut off, 8)?),
            corrupt_chunks: get_u64(take(body, &mut off, 8)?),
            checkpoint_resumes: get_u64(take(body, &mut off, 8)?),
        };
        let n_sessions = get_u32(take(body, &mut off, 4)?) as usize;
        // Every session costs at least its fixed fields; reject a count
        // the remaining bytes cannot hold before allocating.
        if n_sessions.saturating_mul(16) > body.len() - off {
            return Err(CheckpointError::Malformed("session count beyond buffer"));
        }

        let mut sessions = BTreeMap::new();
        for _ in 0..n_sessions {
            let router_id = get_u64(take(body, &mut off, 8)?);
            let total_raw = get_u32(take(body, &mut off, 4)?);
            let n_failed = get_u32(take(body, &mut off, 4)?) as usize;
            if n_failed.saturating_mul(4) > body.len() - off {
                return Err(CheckpointError::Malformed("failed-seq count beyond buffer"));
            }
            let mut crc_failed_seqs = Vec::with_capacity(n_failed);
            for _ in 0..n_failed {
                crc_failed_seqs.push(get_u32(take(body, &mut off, 4)?));
            }
            let mut session = RouterSession::new(router_id, &cfg.session, seed, now);
            session.crc_failed_seqs = crc_failed_seqs;
            if total_raw > 0 {
                if total_raw > MAX_CHUNKS {
                    return Err(CheckpointError::Malformed("total over cap"));
                }
                let total = total_raw as usize;
                let bitmap = take(body, &mut off, total.div_ceil(8))?.to_vec();
                session.total = Some(total_raw);
                session.chunks = vec![None; total];
                for seq in 0..total {
                    if bitmap[seq / 8] & (1 << (seq % 8)) != 0 {
                        let len = get_u32(take(body, &mut off, 4)?) as usize;
                        if len > crate::transport::MAX_CHUNK_PAYLOAD {
                            return Err(CheckpointError::Malformed("payload length over cap"));
                        }
                        session.chunks[seq] = Some(take(body, &mut off, len)?.to_vec());
                        session.received += 1;
                    }
                }
            }
            if sessions.insert(router_id, session).is_some() {
                return Err(CheckpointError::Malformed("duplicate router session"));
            }
        }
        if off != body.len() {
            return Err(CheckpointError::Malformed("trailing bytes"));
        }
        let routers: Vec<u64> = sessions.keys().copied().collect();
        let expected = cfg.fingerprint(epoch_id, &routers);
        if expected != stored_fingerprint {
            return Err(CheckpointError::ConfigMismatch {
                stored: stored_fingerprint,
                expected,
            });
        }
        stats.checkpoint_resumes += 1;
        Ok(EpochCollector {
            epoch_id,
            cfg,
            seed,
            started_at: now,
            sessions,
            stats,
            finalized: false,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::chunk_bundle;

    fn cfg() -> CollectorConfig {
        CollectorConfig {
            deadline: 100,
            straggler: StragglerPolicy::Deadline,
            session: SessionConfig {
                base_backoff: 4,
                max_backoff: 32,
                max_retries: 6,
                jitter: 0,
            },
        }
    }

    fn bundle_bytes(router: u64, len: usize) -> Vec<u8> {
        (0..len).map(|i| (i as u8) ^ (router as u8)).collect()
    }

    #[test]
    fn in_order_delivery_completes_and_acks_cumulatively() {
        let mut coll = EpochCollector::new(3, [7], cfg(), 1, 0);
        let bundle = bundle_bytes(7, 1000);
        let chunks = chunk_bundle(7, 3, &bundle, 256);
        assert_eq!(chunks.len(), 4);
        for (i, c) in chunks.iter().enumerate() {
            let d = coll.offer(c, i as u64);
            assert_eq!(
                d,
                ChunkDisposition::Accepted {
                    router_id: 7,
                    cumulative_ack: i as u32 + 1
                }
            );
        }
        assert!(coll.ready(4));
        let epoch = coll.finalize(4);
        assert_eq!(epoch.frames.len(), 1);
        assert_eq!(epoch.frames[0].1, bundle);
        assert!(epoch.exclusions.is_empty());
        assert_eq!(epoch.stats.chunks_received, 4);
    }

    #[test]
    fn out_of_order_duplicate_and_overlapping_chunks_reassemble_exactly() {
        let mut coll = EpochCollector::new(1, [2], cfg(), 1, 0);
        let bundle = bundle_bytes(2, 700);
        let chunks = chunk_bundle(2, 1, &bundle, 128);
        assert_eq!(chunks.len(), 6);
        // Deliver in reverse, then replay everything twice more.
        for c in chunks.iter().rev() {
            assert!(matches!(
                coll.offer(c, 0),
                ChunkDisposition::Accepted { .. }
            ));
        }
        for c in chunks.iter().chain(chunks.iter()) {
            assert_eq!(
                coll.offer(c, 1),
                ChunkDisposition::Duplicate { router_id: 2 }
            );
        }
        let epoch = coll.finalize(2);
        assert_eq!(epoch.frames[0].1, bundle, "reassembly must be byte-exact");
        assert_eq!(epoch.stats.duplicate_chunks, 12);
        assert_eq!(epoch.stats.chunks_received, 6);
    }

    #[test]
    fn cumulative_ack_tracks_the_contiguous_prefix() {
        let mut coll = EpochCollector::new(1, [5], cfg(), 1, 0);
        let chunks = chunk_bundle(5, 1, &bundle_bytes(5, 600), 128);
        // Chunks 2 and 4 first: ack stays 0 (nothing contiguous from 0).
        coll.offer(&chunks[2], 0);
        match coll.offer(&chunks[4], 0) {
            ChunkDisposition::Accepted { cumulative_ack, .. } => assert_eq!(cumulative_ack, 0),
            d => panic!("{d:?}"),
        }
        coll.offer(&chunks[0], 1);
        match coll.offer(&chunks[1], 1) {
            // 0,1,2 held → ack 3; 3 missing blocks 4.
            ChunkDisposition::Accepted { cumulative_ack, .. } => assert_eq!(cumulative_ack, 3),
            d => panic!("{d:?}"),
        }
        assert_eq!(coll.session(5).unwrap().missing(), vec![3]);
    }

    #[test]
    fn backoff_doubles_and_caps_with_deterministic_jitter() {
        let scfg = SessionConfig {
            base_backoff: 4,
            max_backoff: 16,
            max_retries: 5,
            jitter: 3,
        };
        let ccfg = CollectorConfig {
            deadline: 1000,
            straggler: StragglerPolicy::WaitAll,
            session: scfg,
        };
        let run = || {
            let mut coll = EpochCollector::new(1, [9], ccfg, 42, 0);
            let mut fires = Vec::new();
            for now in 0..400 {
                for req in coll.poll(now) {
                    assert_eq!(req.router_id, 9);
                    assert_eq!(req.epoch_id, 1);
                    assert_eq!(req.missing, Missing::All);
                    fires.push(now);
                }
            }
            fires
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "same seed must reproduce the schedule exactly");
        assert_eq!(a.len(), 5, "max_retries bounds the request count");
        // Gaps grow then cap at max_backoff (+ jitter < 3).
        let gaps: Vec<u64> = a.windows(2).map(|w| w[1] - w[0]).collect();
        for w in gaps.windows(2) {
            assert!(w[1] >= w[0].min(16), "backoff shrank: {gaps:?}");
        }
        assert!(gaps.iter().all(|&g| g <= 16 + 3), "gap over cap: {gaps:?}");
        // A different seed jitters differently (same count though).
        let mut coll = EpochCollector::new(1, [9], ccfg, 43, 0);
        let mut c = Vec::new();
        for now in 0..400 {
            if !coll.poll(now).is_empty() {
                c.push(now);
            }
        }
        assert_eq!(c.len(), 5);
    }

    #[test]
    fn corrupt_chunk_salvage_nacks_and_recovery_succeeds() {
        let mut coll = EpochCollector::new(2, [4], cfg(), 7, 0);
        let bundle = bundle_bytes(4, 500);
        let chunks = chunk_bundle(4, 2, &bundle, 128);
        coll.offer(&chunks[0], 0);
        // Chunk 1 arrives corrupted in the payload: CRC fails, header
        // salvages, fast NACK primes the timer.
        let mut bad = chunks[1].clone();
        bad[crate::transport::CHUNK_HEADER + 5] ^= 0x10;
        assert_eq!(coll.offer(&bad, 1), ChunkDisposition::Corrupt);
        assert_eq!(coll.stats().corrupt_chunks, 1);
        let reqs = coll.poll(1);
        assert_eq!(reqs.len(), 1, "fast NACK must fire immediately");
        match &reqs[0].missing {
            Missing::Seqs(s) => assert_eq!(s, &vec![1, 2, 3]),
            m => panic!("{m:?}"),
        }
        // The retransmit arrives clean; the session recovers fully.
        for c in &chunks[1..] {
            coll.offer(c, 2);
        }
        let epoch = coll.finalize(3);
        assert_eq!(epoch.frames[0].1, bundle);
        assert!(
            epoch.exclusions.is_empty(),
            "recovered session must not be excluded"
        );
    }

    #[test]
    fn deadline_excludes_stragglers_as_timed_out() {
        let mut coll = EpochCollector::new(1, [1, 2], cfg(), 1, 0);
        let chunks = chunk_bundle(1, 1, &bundle_bytes(1, 300), 128);
        for c in &chunks {
            coll.offer(c, 0);
        }
        // Router 2 ships only its first chunk.
        let partial = chunk_bundle(2, 1, &bundle_bytes(2, 300), 128);
        coll.offer(&partial[0], 0);
        assert!(!coll.ready(50));
        assert!(coll.ready(100));
        let epoch = coll.finalize(100);
        assert_eq!(epoch.frames.len(), 1);
        assert_eq!(epoch.exclusions.len(), 1);
        assert_eq!(epoch.exclusions[0].router_id, Some(2));
        assert_eq!(
            epoch.exclusions[0].fault,
            RouterFault::TimedOut {
                received: 1,
                total: 3
            }
        );
    }

    #[test]
    fn deadline_tick_chunk_is_late_regardless_of_call_order() {
        // A chunk arriving exactly at the deadline tick (deadline 100,
        // now == 100) must be treated identically whether the driver
        // offers it before or after calling finalize — the historical bug
        // accepted it in the offer-first ordering only.
        let chunks = chunk_bundle(1, 1, &bundle_bytes(1, 100), 128);
        assert_eq!(chunks.len(), 1);

        // Ordering A: offer at the deadline tick, then finalize.
        let mut offer_first = EpochCollector::new(1, [1], cfg(), 1, 0);
        assert_eq!(offer_first.offer(&chunks[0], 100), ChunkDisposition::Late);
        let a = offer_first.finalize(100);

        // Ordering B: finalize at the deadline tick, then offer.
        let mut finalize_first = EpochCollector::new(1, [1], cfg(), 1, 0);
        let b = finalize_first.finalize(100);
        assert_eq!(
            finalize_first.offer(&chunks[0], 100),
            ChunkDisposition::Late
        );

        for epoch in [&a, &b] {
            assert!(epoch.frames.is_empty());
            assert_eq!(epoch.exclusions.len(), 1);
            assert_eq!(
                epoch.exclusions[0].fault,
                RouterFault::TimedOut {
                    received: 0,
                    total: 0
                }
            );
        }
        // Both orderings end with the same accounting: one late chunk.
        assert_eq!(offer_first.stats().late_chunks, 1);
        assert_eq!(finalize_first.stats().late_chunks, 1);

        // One tick earlier the chunk is squarely in time.
        let mut in_time = EpochCollector::new(1, [1], cfg(), 1, 0);
        assert!(matches!(
            in_time.offer(&chunks[0], 99),
            ChunkDisposition::Accepted { .. }
        ));
        assert!(in_time.finalize(100).exclusions.is_empty());
    }

    #[test]
    fn advisory_deadline_policies_still_accept_past_deadline_chunks() {
        // WaitAll and Quorum hold epochs open past the deadline by
        // design; the hard cutoff must apply to the Deadline policy only.
        for straggler in [StragglerPolicy::WaitAll, StragglerPolicy::Quorum(1)] {
            let ccfg = CollectorConfig {
                deadline: 10,
                straggler,
                session: cfg().session,
            };
            let mut coll = EpochCollector::new(1, [1], ccfg, 1, 0);
            let chunks = chunk_bundle(1, 1, &bundle_bytes(1, 100), 128);
            assert!(
                matches!(
                    coll.offer(&chunks[0], 10),
                    ChunkDisposition::Accepted { .. }
                ),
                "{straggler:?} must accept at the (advisory) deadline"
            );
        }
    }

    #[test]
    fn extreme_backoff_configs_never_overflow_the_timer_arithmetic() {
        // Timer scheduling is `now + backoff + jitter`; with hostile
        // configs or a clock near u64::MAX every term must saturate
        // instead of wrapping (a wrapped timer fires constantly, spamming
        // retransmits forever).
        let scfg = SessionConfig {
            base_backoff: u64::MAX / 2,
            max_backoff: u64::MAX,
            max_retries: u32::MAX,
            jitter: u64::MAX,
        };
        let ccfg = CollectorConfig {
            deadline: u64::MAX,
            straggler: StragglerPolicy::WaitAll,
            session: scfg,
        };
        // Session opened near the end of time: construction saturates.
        let mut coll = EpochCollector::new(1, [9], ccfg, 42, u64::MAX - 1);
        assert_eq!(coll.deadline(), u64::MAX, "deadline must saturate");
        coll.poll(u64::MAX); // must not panic
                             // High attempt counts: drive a zero-jitter session through many
                             // retransmit rounds with the timer forced due each tick; the
                             // shifted backoff saturates at max_backoff and the schedule stays
                             // monotone (no wrap into the past).
        let scfg = SessionConfig {
            base_backoff: u64::MAX / 2,
            max_backoff: u64::MAX,
            max_retries: 100,
            jitter: 0,
        };
        let mut s = RouterSession::new(9, &scfg, 1, 0);
        for _ in 0..100 {
            s.next_request_at = 0; // force the timer due
            assert!(
                s.poll(&scfg, 1, u64::MAX - 3).is_some(),
                "retries left, timer due"
            );
            assert!(
                s.next_request_at >= u64::MAX - 3,
                "timer wrapped into the past: {}",
                s.next_request_at
            );
        }
        s.next_request_at = 0;
        assert!(s.poll(&scfg, 1, u64::MAX).is_none(), "retries exhausted");
        assert!(s.gave_up());
    }

    #[test]
    fn silent_router_times_out_with_unknown_total() {
        let mut coll = EpochCollector::new(1, [6], cfg(), 1, 0);
        let epoch = coll.finalize(200);
        assert_eq!(
            epoch.exclusions[0].fault,
            RouterFault::TimedOut {
                received: 0,
                total: 0
            }
        );
    }

    #[test]
    fn unrecovered_checksum_failure_is_attributed() {
        let scfg = SessionConfig {
            base_backoff: 2,
            max_backoff: 4,
            max_retries: 2,
            jitter: 0,
        };
        let mut coll = EpochCollector::new(
            1,
            [3],
            CollectorConfig {
                deadline: 100,
                straggler: StragglerPolicy::Deadline,
                session: scfg,
            },
            1,
            0,
        );
        let chunks = chunk_bundle(3, 1, &bundle_bytes(3, 300), 128);
        coll.offer(&chunks[0], 0);
        coll.offer(&chunks[2], 0);
        let mut bad = chunks[1].clone();
        bad[crate::transport::CHUNK_HEADER] ^= 0xFF;
        coll.offer(&bad, 1);
        for now in 1..=100 {
            coll.poll(now);
        }
        let epoch = coll.finalize(101);
        assert_eq!(
            epoch.exclusions[0].fault,
            RouterFault::ChecksumMismatch { seq: 1 }
        );
    }

    #[test]
    fn wrong_epoch_and_post_finalize_chunks_count_late() {
        let mut coll = EpochCollector::new(5, [1], cfg(), 1, 0);
        let stale = chunk_bundle(1, 4, b"old epoch", 64);
        assert_eq!(coll.offer(&stale[0], 0), ChunkDisposition::Late);
        let unknown = chunk_bundle(99, 5, b"who", 64);
        assert!(matches!(
            coll.offer(&unknown[0], 0),
            ChunkDisposition::UnknownRouter { router_id: 99 }
        ));
        let fresh = chunk_bundle(1, 5, b"current", 64);
        coll.offer(&fresh[0], 0);
        coll.finalize(1);
        assert_eq!(coll.offer(&fresh[0], 2), ChunkDisposition::Late);
        assert_eq!(coll.stats().late_chunks, 3);
    }

    #[test]
    fn inconsistent_total_is_rejected() {
        let mut coll = EpochCollector::new(1, [1], cfg(), 1, 0);
        let a = chunk_bundle(1, 1, &bundle_bytes(1, 300), 128); // total 3
        let b = chunk_bundle(1, 1, &bundle_bytes(1, 600), 128); // total 5
        coll.offer(&a[0], 0);
        assert_eq!(
            coll.offer(&b[1], 0),
            ChunkDisposition::Inconsistent { router_id: 1 }
        );
    }

    #[test]
    fn quorum_policy_waits_past_deadline_for_quorum() {
        let ccfg = CollectorConfig {
            deadline: 10,
            straggler: StragglerPolicy::Quorum(1),
            session: SessionConfig {
                base_backoff: 2,
                max_backoff: 4,
                max_retries: 2,
                jitter: 0,
            },
        };
        let mut coll = EpochCollector::new(1, [1, 2], ccfg, 1, 0);
        // Nothing at the deadline → quorum 1 not met → not ready.
        assert!(!coll.ready(10));
        let chunks = chunk_bundle(1, 1, &bundle_bytes(1, 100), 128);
        coll.offer(&chunks[0], 11);
        // Quorum met, but only past the deadline.
        assert!(coll.ready(11));
        assert!(!coll.ready(5));
    }

    #[test]
    fn checkpoint_roundtrips_and_resume_continues_the_epoch() {
        let mut coll = EpochCollector::new(9, [1, 2], cfg(), 5, 0);
        let b1 = bundle_bytes(1, 900);
        let b2 = bundle_bytes(2, 900);
        let c1 = chunk_bundle(1, 9, &b1, 128);
        let c2 = chunk_bundle(2, 9, &b2, 128);
        // Router 1 fully delivered, router 2 partially (chunks 0, 3, 5).
        for c in &c1 {
            coll.offer(c, 0);
        }
        for i in [0usize, 3, 5] {
            coll.offer(&c2[i], 0);
        }
        let stats_before = coll.stats();
        let ckpt = coll.checkpoint();
        drop(coll); // the centre dies

        let mut resumed = EpochCollector::resume(&ckpt, cfg(), 5, 10).unwrap();
        assert_eq!(resumed.epoch_id(), 9);
        assert_eq!(resumed.complete_sessions(), 1);
        let s2 = resumed.session(2).unwrap();
        assert_eq!(s2.received(), 3);
        assert_eq!(s2.missing(), vec![1, 2, 4, 6, 7]);
        assert_eq!(
            resumed.stats().checkpoint_resumes,
            stats_before.checkpoint_resumes + 1
        );
        assert_eq!(
            resumed.stats().chunks_received,
            stats_before.chunks_received
        );
        // Retransmits refill the holes; the reassembled bundles are
        // byte-identical to the originals.
        let reqs = resumed.poll(resumed.deadline());
        assert_eq!(reqs.len(), 1);
        assert_eq!(reqs[0].router_id, 2);
        for i in [1usize, 2, 4, 6, 7] {
            resumed.offer(&c2[i], 20);
        }
        let epoch = resumed.finalize(21);
        assert_eq!(epoch.frames.len(), 2);
        assert_eq!(epoch.frames[0].1, b1);
        assert_eq!(epoch.frames[1].1, b2);
        assert!(epoch.exclusions.is_empty());
    }

    #[test]
    fn checkpoint_rejects_mangling_and_config_mismatch() {
        let mut coll = EpochCollector::new(1, [1, 2, 3], cfg(), 5, 0);
        let c1 = chunk_bundle(2, 1, &bundle_bytes(2, 500), 128);
        coll.offer(&c1[0], 0);
        let ckpt = coll.checkpoint();

        // Every strict prefix fails typed.
        for cut in 0..ckpt.len() {
            assert!(
                EpochCollector::resume(&ckpt[..cut], cfg(), 5, 0).is_err(),
                "prefix {cut} resumed"
            );
        }
        // Any single bit flip fails typed (CRC trailer).
        for byte in (0..ckpt.len()).step_by(7) {
            let mut bad = ckpt.clone();
            bad[byte] ^= 0x04;
            assert!(EpochCollector::resume(&bad, cfg(), 5, 0).is_err());
        }
        // A different config must be refused.
        let mut other = cfg();
        other.deadline += 1;
        assert!(matches!(
            EpochCollector::resume(&ckpt, other, 5, 0),
            Err(CheckpointError::ConfigMismatch { .. })
        ));
    }
}
