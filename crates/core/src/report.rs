//! Detection reports emitted by the analysis centre.

use crate::ingest::IngestReport;
use serde::{Deserialize, Serialize};

/// Outcome of the aligned-case pipeline for one epoch.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AlignedReport {
    /// Whether a non-naturally-occurring pattern was found.
    pub found: bool,
    /// Routers identified as having seen the common content.
    pub routers: Vec<usize>,
    /// Number of common packets (witness columns) attributed to the
    /// content.
    pub content_packets: usize,
    /// Bitmap indices of the witness columns — the content's "hashed
    /// signature", usable to filter raw traffic downstream.
    pub signature_indices: Vec<usize>,
}

/// Outcome of the unaligned-case pipeline for one epoch.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct UnalignedReport {
    /// Whether the ER statistical test raised the alarm.
    pub alarm: bool,
    /// Size of the largest connected component in the test graph.
    pub largest_component: usize,
    /// The component threshold in force.
    pub component_threshold: usize,
    /// Routers suspected of carrying the common content (from the groups
    /// in the detected cores). Empty when no alarm.
    pub suspected_routers: Vec<usize>,
    /// Global group ids in the detected cores (finer-grained handle for
    /// follow-up packet logging).
    pub suspected_groups: Vec<usize>,
}

/// Sidecar-sketch accounting for one epoch: how many accepted bundles
/// shipped a `DCSS` artifact, how the merge went, and which columns the
/// fused content-index top-k seeded into the aligned search. Seeding is
/// advisory — these fields describe prefilter work, never the verdict.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SketchReport {
    /// Accepted bundles carrying a sketch artifact.
    pub artifacts: usize,
    /// Artifacts merged into the fused epoch sketch.
    pub merged: usize,
    /// Artifacts skipped: undecodable, or disagreeing with the first
    /// decodable one on kind, domain or shape.
    pub skipped: usize,
    /// Total sketch payload bytes across the accepted bundles.
    pub payload_bytes: u64,
    /// Seed columns handed to the aligned core search (empty when
    /// seeding is off, no sketch arrived, or the fused sketch is not in
    /// the content-index domain).
    pub seed_columns: Vec<usize>,
}

/// Wall-clock nanoseconds spent in the analysis stages of one epoch.
///
/// **Deprecated view**: since the staged-pipeline refactor the source of
/// truth is the centre's metrics registry
/// ([`AnalysisCenter::metrics`](crate::center::AnalysisCenter::metrics));
/// this struct is a coarse last-epoch view over those per-stage gauges,
/// kept (with identical values) for existing report consumers and
/// derivable from any snapshot via [`EpochTimings::from_snapshot`].
///
/// `fuse_ns` covers turning validated digests into the fused matrices
/// (the aligned `fuse` stage plus the unaligned `stack_rows` stage);
/// `screen_ns` is the aligned `screen` stage; `sweep_ns` aggregates the
/// aligned `core_find`, `sweep` and `terminate` stages; `total_ns`
/// clocks the whole call, ingest to report. The paper's 1-s epoch budget
/// makes these the primary scalability figure of merit for the analysis
/// centre.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EpochTimings {
    /// Fusing validated digests into the column/row matrices.
    pub fuse_ns: u64,
    /// Aligned-search screening (rank columns, materialise the n′ heaviest).
    pub screen_ns: u64,
    /// Aligned product search, expansion sweep and verdict.
    pub sweep_ns: u64,
    /// The whole analysis call, ingest through report assembly.
    pub total_ns: u64,
}

impl EpochTimings {
    /// Derives the coarse last-epoch view from a metrics snapshot's
    /// `epoch_stage_ns{pipeline,stage}` gauges (zeros for stages the
    /// snapshot has never seen). For a snapshot taken right after an
    /// `analyze_epoch*` call this equals the report's `timings` field
    /// exactly.
    pub fn from_snapshot(snap: &dcs_obs::MetricsSnapshot) -> EpochTimings {
        let stage = |pipeline: &str, stage: &str| {
            snap.gauge(&dcs_obs::metric_key(
                "epoch_stage_ns",
                &[("pipeline", pipeline), ("stage", stage)],
            ))
            .unwrap_or(0)
        };
        EpochTimings {
            fuse_ns: stage("aligned", "fuse") + stage("unaligned", "stack_rows"),
            screen_ns: stage("aligned", "screen"),
            sweep_ns: stage("aligned", "core_find")
                + stage("aligned", "sweep")
                + stage("aligned", "terminate"),
            total_ns: snap.gauge("epoch_total_ns").unwrap_or(0),
        }
    }
}

/// Per-epoch transport accounting, recorded by the
/// [`EpochCollector`](crate::session::EpochCollector) while the epoch's
/// chunk frames were being received and reassembled. All zeros when the
/// epoch was ingested without the transport layer (in-memory batches or
/// whole wire frames handed straight to the centre).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TransportStats {
    /// Chunk frames accepted into reassembly buffers.
    pub chunks_received: u64,
    /// Retransmit requests issued (one per backoff firing, however many
    /// chunks each requested).
    pub retransmits: u64,
    /// Chunks that arrived for the wrong epoch or after the epoch was
    /// finalized.
    pub late_chunks: u64,
    /// Duplicate deliveries of already-held chunks (absorbed, not
    /// double-counted into buffers).
    pub duplicate_chunks: u64,
    /// Frames rejected by the CRC-32 trailer or envelope decode.
    pub corrupt_chunks: u64,
    /// Times this epoch's collector was resumed from a checkpoint after a
    /// centre restart.
    pub checkpoint_resumes: u64,
}

/// The per-epoch report bundle.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EpochReport {
    /// Number of routers whose digests were fused.
    pub routers: usize,
    /// Total raw traffic summarised (wire bytes).
    pub raw_bytes: u64,
    /// Total digest bytes shipped.
    pub digest_bytes: u64,
    /// Aligned-case verdict.
    pub aligned: AlignedReport,
    /// Unaligned-case verdict.
    pub unaligned: UnalignedReport,
    /// Ingest accounting: which routers were fused, which bundles were
    /// excluded and why. A degraded (but analysable) epoch shows up here.
    pub ingest: IngestReport,
    /// Sidecar-sketch accounting (all zeros when no bundle shipped one).
    pub sketch: SketchReport,
    /// Per-stage wall-clock timings of the analysis.
    pub timings: EpochTimings,
    /// Delivery accounting from the transport layer (zeros when the epoch
    /// bypassed it).
    pub transport: TransportStats,
}

impl EpochReport {
    /// Raw bytes per digest byte across the whole deployment.
    pub fn compression_ratio(&self) -> f64 {
        if self.digest_bytes == 0 {
            0.0
        } else {
            self.raw_bytes as f64 / self.digest_bytes as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> EpochReport {
        EpochReport {
            routers: 4,
            raw_bytes: 4_000_000,
            digest_bytes: 4_000,
            aligned: AlignedReport {
                found: true,
                routers: vec![0, 2],
                content_packets: 12,
                signature_indices: vec![5, 17],
            },
            unaligned: UnalignedReport {
                alarm: false,
                largest_component: 9,
                component_threshold: 100,
                suspected_routers: vec![],
                suspected_groups: vec![],
            },
            ingest: IngestReport {
                submitted: 5,
                accepted: vec![0, 1, 2, 3],
                excluded: vec![crate::ingest::Exclusion {
                    index: 4,
                    router_id: None,
                    fault: crate::ingest::RouterFault::Wire("digest frame truncated".into()),
                }],
            },
            sketch: SketchReport {
                artifacts: 4,
                merged: 4,
                skipped: 0,
                payload_bytes: 640,
                seed_columns: vec![5, 17],
            },
            timings: EpochTimings {
                fuse_ns: 1_000,
                screen_ns: 2_000,
                sweep_ns: 3_000,
                total_ns: 10_000,
            },
            transport: TransportStats {
                chunks_received: 80,
                retransmits: 3,
                late_chunks: 1,
                duplicate_chunks: 2,
                corrupt_chunks: 4,
                checkpoint_resumes: 1,
            },
        }
    }

    #[test]
    fn compression_ratio() {
        assert!((sample().compression_ratio() - 1000.0).abs() < 1e-9);
        let mut r = sample();
        r.digest_bytes = 0;
        assert_eq!(r.compression_ratio(), 0.0);
    }

    #[test]
    fn serde_roundtrip() {
        let r = sample();
        let json = serde_json::to_string_pretty(&r).unwrap();
        let back: EpochReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.aligned.routers, r.aligned.routers);
        assert_eq!(back.unaligned.component_threshold, 100);
        assert_eq!(back.ingest, r.ingest);
        assert!(back.ingest.is_degraded());
        assert_eq!(back.timings, r.timings);
        assert_eq!(back.timings.total_ns, 10_000);
        assert_eq!(back.transport, r.transport);
        assert_eq!(back.transport.retransmits, 3);
        assert_eq!(back.transport.checkpoint_resumes, 1);
    }
}
