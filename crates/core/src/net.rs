//! Real-socket transport: UDP (primary) and TCP (fallback) bindings for
//! the chunk/session layer, plus the in-process impairment shim the
//! wire-speed soak injects faults with.
//!
//! Everything above this module is unchanged: the same
//! [`EpochCollector`] state machine collects DCSC chunks, emits
//! retransmit requests and trips straggler deadlines — it just reads
//! time from a [`Clock`] and exchanges frames over
//! real sockets instead of a simulated channel. The module adds one new
//! wire format, the **DCSA control frame**, for the centre→monitor
//! direction (acks, retransmit requests, epoch advance, shutdown):
//!
//! ```text
//!  ┌───────┬───┬──────┬───────────┬──────────┬─────┬───────┬────────┬───────┐
//!  │ magic │ v │ kind │ router id │ epoch id │ arg │ nseqs │ seqs…  │ CRC32 │
//!  │ DCSA  │ 1 │  u8  │    u64    │   u64    │ u32 │  u32  │ u32×n  │  u32  │
//!  └───────┴───┴──────┴───────────┴──────────┴─────┴───────┴────────┴───────┘
//! ```
//!
//! Graceful degradation is the design rule: every socket error becomes a
//! metric and a typed outcome (a dropped frame, an exclusion, a
//! `QuorumTooSmall`), never a panic. A dead monitor is indistinguishable
//! from a lossy link, which is exactly what the session layer's
//! deadline/backoff machinery already handles; a dead *centre* is
//! handled by monitors re-pushing unacked chunks on capped backoff until
//! the resumed centre (restored from a DCSK checkpoint) NACKs or acks
//! them over the new socket.
//!
//! ## Transports
//!
//! * **UDP** — one frame per datagram. Chunk payloads must stay
//!   datagram-safe ([`crate::transport::DATAGRAM_SAFE_PAYLOAD`]); the
//!   peer address table is learned from received frame headers, so a
//!   centre restart needs no reconfiguration.
//! * **TCP** — a length-prefixed frame stream (`u32` LE length, then the
//!   frame bytes) for deployments that cannot pass UDP. Reordering and
//!   loss disappear, but the chunk/ack machinery still bounds memory and
//!   survives connection resets.

use crate::clock::Clock;
use crate::session::{ChunkDisposition, CollectedEpoch, EpochCollector, Missing};
use crate::transport::{ChunkFrame, MAX_CHUNKS, MAX_CHUNK_PAYLOAD};
use dcs_hash::crc32::crc32;
use dcs_obs::MetricsRegistry;
use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::io::{ErrorKind, Read as _, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs, UdpSocket};

/// Magic for control frames (`b"DCSA"`).
pub const CONTROL_MAGIC: [u8; 4] = *b"DCSA";

/// Control frame version.
pub const CONTROL_VERSION: u8 = 1;

/// Fixed control-frame bytes before the seq list: magic + version +
/// kind + router id + epoch id + arg + seq count.
pub const CONTROL_HEADER: usize = 4 + 1 + 1 + 8 + 8 + 4 + 4;

/// Largest frame a TCP stream may declare: a max-payload chunk frame
/// plus envelope. Anything larger is a protocol violation and resets
/// the connection.
pub const MAX_STREAM_FRAME: usize = MAX_CHUNK_PAYLOAD + 128;

const KIND_HELLO: u8 = 0;
const KIND_ACK: u8 = 1;
const KIND_NACK_ALL: u8 = 2;
const KIND_NACK_SEQS: u8 = 3;
const KIND_ADVANCE: u8 = 4;
const KIND_SHUTDOWN: u8 = 5;

/// A decoded DCSA control frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ControlFrame {
    /// Monitor → centre: register this router's address before (or
    /// without) sending data.
    Hello {
        /// The registering router.
        router_id: u64,
    },
    /// Centre → monitor: the session's cumulative ack for `epoch_id`.
    Ack {
        /// The acked router.
        router_id: u64,
        /// The epoch being collected.
        epoch_id: u64,
        /// Leading contiguous chunks now held.
        cumulative_ack: u32,
    },
    /// Centre → monitor: resend every chunk of the epoch.
    NackAll {
        /// The router whose chunks are missing.
        router_id: u64,
        /// The epoch being collected.
        epoch_id: u64,
    },
    /// Centre → monitor: resend these chunk seqs.
    NackSeqs {
        /// The router whose chunks are missing.
        router_id: u64,
        /// The epoch being collected.
        epoch_id: u64,
        /// The missing seqs.
        seqs: Vec<u32>,
    },
    /// Centre → monitor: the centre is now collecting `epoch_id`; stop
    /// sending older epochs.
    Advance {
        /// The addressed router (or `u64::MAX` for broadcast).
        router_id: u64,
        /// The epoch the centre collects now.
        epoch_id: u64,
    },
    /// Centre → monitor: stop cleanly.
    Shutdown {
        /// The addressed router (or `u64::MAX` for broadcast).
        router_id: u64,
    },
}

/// Errors from decoding control frames.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ControlError {
    /// Buffer too short for the declared structure.
    Truncated,
    /// Unexpected magic bytes.
    BadMagic([u8; 4]),
    /// Unsupported control version.
    BadVersion(u8),
    /// Unknown control kind.
    BadKind(u8),
    /// The CRC-32 trailer disagrees with the frame bytes.
    ChecksumMismatch,
    /// Structurally impossible field.
    Malformed(&'static str),
}

impl fmt::Display for ControlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ControlError::Truncated => write!(f, "control frame truncated"),
            ControlError::BadMagic(m) => write!(f, "bad control magic {m:02x?}"),
            ControlError::BadVersion(v) => write!(f, "unsupported control version {v}"),
            ControlError::BadKind(k) => write!(f, "unknown control kind {k}"),
            ControlError::ChecksumMismatch => write!(f, "control checksum mismatch"),
            ControlError::Malformed(what) => write!(f, "malformed control frame: {what}"),
        }
    }
}

impl std::error::Error for ControlError {}

impl ControlFrame {
    /// The addressed router.
    pub fn router_id(&self) -> u64 {
        match *self {
            ControlFrame::Hello { router_id }
            | ControlFrame::Ack { router_id, .. }
            | ControlFrame::NackAll { router_id, .. }
            | ControlFrame::NackSeqs { router_id, .. }
            | ControlFrame::Advance { router_id, .. }
            | ControlFrame::Shutdown { router_id } => router_id,
        }
    }

    /// Encodes the frame with its CRC-32 trailer.
    pub fn encode(&self) -> Vec<u8> {
        let (kind, router_id, epoch_id, arg, seqs): (u8, u64, u64, u32, &[u32]) = match self {
            ControlFrame::Hello { router_id } => (KIND_HELLO, *router_id, 0, 0, &[]),
            ControlFrame::Ack {
                router_id,
                epoch_id,
                cumulative_ack,
            } => (KIND_ACK, *router_id, *epoch_id, *cumulative_ack, &[]),
            ControlFrame::NackAll {
                router_id,
                epoch_id,
            } => (KIND_NACK_ALL, *router_id, *epoch_id, 0, &[]),
            ControlFrame::NackSeqs {
                router_id,
                epoch_id,
                seqs,
            } => (KIND_NACK_SEQS, *router_id, *epoch_id, 0, seqs),
            ControlFrame::Advance {
                router_id,
                epoch_id,
            } => (KIND_ADVANCE, *router_id, *epoch_id, 0, &[]),
            ControlFrame::Shutdown { router_id } => (KIND_SHUTDOWN, *router_id, 0, 0, &[]),
        };
        assert!(seqs.len() <= MAX_CHUNKS as usize, "seq list over cap");
        let mut buf = Vec::with_capacity(CONTROL_HEADER + seqs.len() * 4 + 4);
        buf.extend_from_slice(&CONTROL_MAGIC);
        buf.push(CONTROL_VERSION);
        buf.push(kind);
        buf.extend_from_slice(&router_id.to_le_bytes());
        buf.extend_from_slice(&epoch_id.to_le_bytes());
        buf.extend_from_slice(&arg.to_le_bytes());
        buf.extend_from_slice(&(seqs.len() as u32).to_le_bytes());
        for s in seqs {
            buf.extend_from_slice(&s.to_le_bytes());
        }
        let crc = crc32(&buf);
        buf.extend_from_slice(&crc.to_le_bytes());
        buf
    }

    /// Decodes a control frame. Never panics on arbitrary input; every
    /// declared count is capped before allocation and the CRC-32 trailer
    /// is verified first.
    pub fn decode(buf: &[u8]) -> Result<ControlFrame, ControlError> {
        if buf.len() < CONTROL_HEADER + 4 {
            return Err(ControlError::Truncated);
        }
        if buf[..4] != CONTROL_MAGIC {
            let mut m = [0u8; 4];
            m.copy_from_slice(&buf[..4]);
            return Err(ControlError::BadMagic(m));
        }
        if buf[4] != CONTROL_VERSION {
            return Err(ControlError::BadVersion(buf[4]));
        }
        let kind = buf[5];
        let router_id = u64::from_le_bytes(buf[6..14].try_into().expect("8-byte slice"));
        let epoch_id = u64::from_le_bytes(buf[14..22].try_into().expect("8-byte slice"));
        let arg = u32::from_le_bytes(buf[22..26].try_into().expect("4-byte slice"));
        let nseqs = u32::from_le_bytes(buf[26..30].try_into().expect("4-byte slice"));
        if nseqs > MAX_CHUNKS {
            return Err(ControlError::Malformed("seq count over cap"));
        }
        let total = CONTROL_HEADER + nseqs as usize * 4 + 4;
        if buf.len() < total {
            return Err(ControlError::Truncated);
        }
        let body = &buf[..total - 4];
        let declared = u32::from_le_bytes(buf[total - 4..total].try_into().expect("4-byte slice"));
        if crc32(body) != declared {
            return Err(ControlError::ChecksumMismatch);
        }
        let seqs: Vec<u32> = body[CONTROL_HEADER..]
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().expect("4-byte slice")))
            .collect();
        Ok(match kind {
            KIND_HELLO => ControlFrame::Hello { router_id },
            KIND_ACK => ControlFrame::Ack {
                router_id,
                epoch_id,
                cumulative_ack: arg,
            },
            KIND_NACK_ALL => ControlFrame::NackAll {
                router_id,
                epoch_id,
            },
            KIND_NACK_SEQS => ControlFrame::NackSeqs {
                router_id,
                epoch_id,
                seqs,
            },
            KIND_ADVANCE => ControlFrame::Advance {
                router_id,
                epoch_id,
            },
            KIND_SHUTDOWN => ControlFrame::Shutdown { router_id },
            other => return Err(ControlError::BadKind(other)),
        })
    }
}

// ---------------------------------------------------------------------
// Impairment shim
// ---------------------------------------------------------------------

/// Impairment probabilities, in per-mille, applied to outgoing frames
/// *before* they reach the socket. The shim is how the soak makes a real
/// localhost link behave like a lossy WAN while staying deterministic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ImpairmentConfig {
    /// Frame silently dropped (‰).
    pub drop_per_mille: u16,
    /// Frame sent twice (‰).
    pub duplicate_per_mille: u16,
    /// Frame held back and released after the next send (‰).
    pub reorder_per_mille: u16,
    /// One bit of the frame flipped (‰) — the CRC layer must catch it.
    pub corrupt_per_mille: u16,
}

impl ImpairmentConfig {
    /// No impairment.
    pub fn perfect() -> Self {
        ImpairmentConfig {
            drop_per_mille: 0,
            duplicate_per_mille: 0,
            reorder_per_mille: 0,
            corrupt_per_mille: 0,
        }
    }

    /// The soak regime: 10% drop, 5% reorder, 3% duplicate, 2% corrupt —
    /// ≥10% of frames impaired, matching the simulated
    /// `ChannelConfig::soak()` severity.
    pub fn soak() -> Self {
        ImpairmentConfig {
            drop_per_mille: 100,
            duplicate_per_mille: 30,
            reorder_per_mille: 50,
            corrupt_per_mille: 20,
        }
    }
}

/// Deterministic fault injector at the socket boundary (SplitMix64
/// driven, so a seeded soak replays bit-identically).
#[derive(Debug)]
pub struct ImpairmentShim {
    cfg: ImpairmentConfig,
    state: u64,
    held: Option<Vec<u8>>,
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl ImpairmentShim {
    /// A shim applying `cfg` with deterministic decisions from `seed`.
    pub fn new(cfg: ImpairmentConfig, seed: u64) -> Self {
        ImpairmentShim {
            cfg,
            state: seed ^ 0x5EED_50CC_E75B_0B0B,
            held: None,
        }
    }

    fn chance(&mut self, per_mille: u16) -> bool {
        per_mille > 0 && splitmix64(&mut self.state) % 1000 < per_mille as u64
    }

    /// Applies the impairment schedule to one outgoing frame, returning
    /// the frames to actually put on the wire (possibly none, possibly
    /// several, possibly corrupted). Each impairment increments
    /// `socket_impaired_total{kind}` in `metrics`.
    pub fn outgoing(&mut self, frame: &[u8], metrics: &MetricsRegistry) -> Vec<Vec<u8>> {
        let mut out = Vec::with_capacity(2);
        if self.chance(self.cfg.drop_per_mille) {
            metrics
                .counter("socket_impaired_total", &[("kind", "drop")])
                .inc();
            // A drop still releases any held frame: the link stays live.
            out.extend(self.held.take());
            return out;
        }
        let mut frame = frame.to_vec();
        if self.chance(self.cfg.corrupt_per_mille) && !frame.is_empty() {
            let bit = splitmix64(&mut self.state) as usize % (frame.len() * 8);
            frame[bit / 8] ^= 1 << (bit % 8);
            metrics
                .counter("socket_impaired_total", &[("kind", "corrupt")])
                .inc();
        }
        let duplicate = self.chance(self.cfg.duplicate_per_mille);
        if self.chance(self.cfg.reorder_per_mille) {
            metrics
                .counter("socket_impaired_total", &[("kind", "reorder")])
                .inc();
            // Hold this frame back; release the previously held one (if
            // any) in its place.
            out.extend(self.held.replace(frame.clone()));
        } else {
            out.push(frame.clone());
            out.extend(self.held.take());
        }
        if duplicate {
            metrics
                .counter("socket_impaired_total", &[("kind", "duplicate")])
                .inc();
            out.push(frame);
        }
        out
    }

    /// Releases a held reordered frame, if any. Call when a send burst
    /// ends so nothing is withheld forever.
    pub fn flush(&mut self) -> Option<Vec<u8>> {
        self.held.take()
    }
}

// ---------------------------------------------------------------------
// Sockets
// ---------------------------------------------------------------------

/// Which transport a socket endpoint runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transport {
    /// One frame per datagram (primary).
    Udp,
    /// Length-prefixed frame stream (fallback).
    Tcp,
}

impl std::str::FromStr for Transport {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "udp" => Ok(Transport::Udp),
            "tcp" => Ok(Transport::Tcp),
            other => Err(format!("unknown transport {other:?} (udp|tcp)")),
        }
    }
}

/// Where a peer can be reached.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Peer {
    Udp(SocketAddr),
    Tcp(usize),
}

#[derive(Debug)]
struct TcpConn {
    stream: TcpStream,
    rdbuf: Vec<u8>,
    dead: bool,
}

impl TcpConn {
    fn new(stream: TcpStream) -> std::io::Result<Self> {
        stream.set_nonblocking(true)?;
        stream.set_nodelay(true)?;
        Ok(TcpConn {
            stream,
            rdbuf: Vec::new(),
            dead: false,
        })
    }

    /// Drains readable bytes and parses complete length-prefixed frames.
    fn poll_frames(&mut self, scratch: &mut [u8]) -> Vec<Vec<u8>> {
        let mut frames = Vec::new();
        loop {
            match self.stream.read(scratch) {
                Ok(0) => {
                    self.dead = true;
                    break;
                }
                Ok(n) => self.rdbuf.extend_from_slice(&scratch[..n]),
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.dead = true;
                    break;
                }
            }
        }
        let mut off = 0;
        while self.rdbuf.len() - off >= 4 {
            let len =
                u32::from_le_bytes(self.rdbuf[off..off + 4].try_into().expect("4 bytes")) as usize;
            if len > MAX_STREAM_FRAME {
                // Protocol violation: drop the connection, typed.
                self.dead = true;
                break;
            }
            if self.rdbuf.len() - off - 4 < len {
                break;
            }
            frames.push(self.rdbuf[off + 4..off + 4 + len].to_vec());
            off += 4 + len;
        }
        self.rdbuf.drain(..off);
        frames
    }

    /// Writes one length-prefixed frame; returns false when the
    /// connection died. A short nonblocking write blocks briefly rather
    /// than splitting frame state across calls — frames are small
    /// (≤ [`MAX_STREAM_FRAME`]) and localhost TCP buffers absorb them.
    fn send_frame(&mut self, frame: &[u8]) -> bool {
        if self.dead {
            return false;
        }
        let mut buf = Vec::with_capacity(4 + frame.len());
        buf.extend_from_slice(&(frame.len() as u32).to_le_bytes());
        buf.extend_from_slice(frame);
        let mut off = 0;
        while off < buf.len() {
            match self.stream.write(&buf[off..]) {
                Ok(0) => {
                    self.dead = true;
                    return false;
                }
                Ok(n) => off += n,
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    std::thread::sleep(std::time::Duration::from_micros(50));
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => {
                    self.dead = true;
                    return false;
                }
            }
        }
        true
    }
}

/// Extracts the routing identity of a received frame: DCSC chunk headers
/// and DCSA control frames both carry the router id up front.
fn frame_router_id(frame: &[u8]) -> Option<u64> {
    if frame.len() >= 4 && frame[..4] == CONTROL_MAGIC {
        return ControlFrame::decode(frame).ok().map(|c| c.router_id());
    }
    ChunkFrame::salvage_header(frame).map(|(router_id, _, _)| router_id)
}

/// The analysis centre's socket endpoint: binds UDP (and, for
/// [`Transport::Tcp`], a listener on the same port), learns peer
/// addresses from received frames, and queues outgoing control frames
/// with stall-aware nonblocking sends.
#[derive(Debug)]
pub struct CenterSocket {
    udp: UdpSocket,
    listener: Option<TcpListener>,
    conns: Vec<TcpConn>,
    peers: BTreeMap<u64, Peer>,
    outq: VecDeque<(Peer, Vec<u8>)>,
    scratch: Vec<u8>,
    shim: Option<ImpairmentShim>,
}

const ROLE_CENTER: [(&str, &str); 1] = [("role", "center")];
const ROLE_MONITOR: [(&str, &str); 1] = [("role", "monitor")];

impl CenterSocket {
    /// Binds the centre endpoint on `addr` (e.g. `127.0.0.1:0`). With
    /// [`Transport::Tcp`] a listener is opened on the same port as the
    /// UDP socket; UDP remains live so mixed deployments work.
    pub fn bind(addr: impl ToSocketAddrs, transport: Transport) -> std::io::Result<CenterSocket> {
        let udp = UdpSocket::bind(addr)?;
        udp.set_nonblocking(true)?;
        let listener = match transport {
            Transport::Udp => None,
            Transport::Tcp => {
                let l = TcpListener::bind(udp.local_addr()?)?;
                l.set_nonblocking(true)?;
                Some(l)
            }
        };
        Ok(CenterSocket {
            udp,
            listener,
            conns: Vec::new(),
            peers: BTreeMap::new(),
            outq: VecDeque::new(),
            scratch: vec![0u8; MAX_STREAM_FRAME + 64],
            shim: None,
        })
    }

    /// Injects an impairment shim on the centre's outgoing frames.
    pub fn set_shim(&mut self, shim: ImpairmentShim) {
        self.shim = Some(shim);
    }

    /// The bound address.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.udp.local_addr()
    }

    /// Routers with a known return address.
    pub fn known_peers(&self) -> usize {
        self.peers.len()
    }

    /// Drains every readable frame (UDP datagrams, TCP streams, new TCP
    /// connections), learns peer addresses from frame headers, flushes
    /// the outgoing queue, and updates the socket gauges.
    pub fn poll(&mut self, metrics: &MetricsRegistry) -> Vec<Vec<u8>> {
        let mut frames = Vec::new();
        // New TCP connections.
        if let Some(listener) = &self.listener {
            loop {
                match listener.accept() {
                    Ok((stream, _)) => match TcpConn::new(stream) {
                        Ok(conn) => self.conns.push(conn),
                        Err(_) => {
                            metrics
                                .counter("socket_send_errors_total", &ROLE_CENTER)
                                .inc();
                        }
                    },
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(_) => break,
                }
            }
        }
        // UDP datagrams.
        loop {
            match self.udp.recv_from(&mut self.scratch) {
                Ok((n, src)) => {
                    let frame = self.scratch[..n].to_vec();
                    if let Some(router_id) = frame_router_id(&frame) {
                        self.peers.insert(router_id, Peer::Udp(src));
                    }
                    frames.push(frame);
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => {
                    // Spurious ICMP-derived errors on Linux; typed count,
                    // keep serving.
                    metrics
                        .counter("socket_recv_errors_total", &ROLE_CENTER)
                        .inc();
                    break;
                }
            }
        }
        // TCP frame streams.
        for i in 0..self.conns.len() {
            let polled = self.conns[i].poll_frames(&mut self.scratch);
            for frame in polled {
                if let Some(router_id) = frame_router_id(&frame) {
                    self.peers.insert(router_id, Peer::Tcp(i));
                }
                frames.push(frame);
            }
        }
        metrics
            .counter("socket_frames_received_total", &ROLE_CENTER)
            .add(frames.len() as u64);
        self.flush(metrics);
        frames
    }

    /// Queues a control frame to `router_id`'s learned address. Returns
    /// false (and counts `socket_unknown_peer_total`) when the router has
    /// never been heard from — the caller's timers cover that monitor.
    pub fn send_control(&mut self, control: &ControlFrame, metrics: &MetricsRegistry) -> bool {
        let router_id = control.router_id();
        let Some(&peer) = self.peers.get(&router_id) else {
            metrics.counter("socket_unknown_peer_total", &[]).inc();
            return false;
        };
        let encoded = control.encode();
        match &mut self.shim {
            Some(shim) => {
                for frame in shim.outgoing(&encoded, metrics) {
                    self.outq.push_back((peer, frame));
                }
            }
            None => self.outq.push_back((peer, encoded)),
        }
        self.flush(metrics);
        true
    }

    /// Sends `control` to every known peer.
    pub fn broadcast(&mut self, make: impl Fn(u64) -> ControlFrame, metrics: &MetricsRegistry) {
        let routers: Vec<u64> = self.peers.keys().copied().collect();
        for router_id in routers {
            self.send_control(&make(router_id), metrics);
        }
    }

    fn flush(&mut self, metrics: &MetricsRegistry) {
        while let Some((peer, frame)) = self.outq.pop_front() {
            match peer {
                Peer::Udp(addr) => match self.udp.send_to(&frame, addr) {
                    Ok(_) => {
                        metrics
                            .counter("socket_frames_sent_total", &ROLE_CENTER)
                            .inc();
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => {
                        metrics
                            .counter("socket_send_stalls_total", &ROLE_CENTER)
                            .inc();
                        self.outq.push_front((peer, frame));
                        break;
                    }
                    Err(_) => {
                        metrics
                            .counter("socket_send_errors_total", &ROLE_CENTER)
                            .inc();
                    }
                },
                Peer::Tcp(i) => {
                    if self.conns.get_mut(i).is_some_and(|c| c.send_frame(&frame)) {
                        metrics
                            .counter("socket_frames_sent_total", &ROLE_CENTER)
                            .inc();
                    } else {
                        metrics
                            .counter("socket_send_errors_total", &ROLE_CENTER)
                            .inc();
                    }
                }
            }
        }
        metrics
            .gauge("socket_send_queue_depth", &ROLE_CENTER)
            .set(self.outq.len() as u64);
    }
}

/// A monitoring point's socket endpoint: a connected UDP socket or a TCP
/// stream to the centre, with the impairment shim (if any) on the
/// outgoing data path.
#[derive(Debug)]
pub struct MonitorSocket {
    inner: MonitorInner,
    outq: VecDeque<Vec<u8>>,
    scratch: Vec<u8>,
    shim: Option<ImpairmentShim>,
}

#[derive(Debug)]
enum MonitorInner {
    Udp(UdpSocket),
    Tcp(TcpConn),
}

impl MonitorSocket {
    /// Connects to the centre at `center` over `transport`.
    pub fn connect(
        center: impl ToSocketAddrs,
        transport: Transport,
    ) -> std::io::Result<MonitorSocket> {
        let inner = match transport {
            Transport::Udp => {
                let udp = UdpSocket::bind("127.0.0.1:0")?;
                udp.connect(center)?;
                udp.set_nonblocking(true)?;
                MonitorInner::Udp(udp)
            }
            Transport::Tcp => {
                let addr = center
                    .to_socket_addrs()?
                    .next()
                    .ok_or_else(|| std::io::Error::new(ErrorKind::InvalidInput, "no addr"))?;
                MonitorInner::Tcp(TcpConn::new(TcpStream::connect(addr)?)?)
            }
        };
        Ok(MonitorSocket {
            inner,
            outq: VecDeque::new(),
            scratch: vec![0u8; MAX_STREAM_FRAME + 64],
            shim: None,
        })
    }

    /// Injects an impairment shim on this monitor's outgoing frames.
    pub fn set_shim(&mut self, shim: ImpairmentShim) {
        self.shim = Some(shim);
    }

    /// Queues one frame (data chunk or Hello) through the shim and
    /// flushes what the socket will take.
    pub fn send(&mut self, frame: &[u8], metrics: &MetricsRegistry) {
        match &mut self.shim {
            Some(shim) => {
                let impaired = shim.outgoing(frame, metrics);
                self.outq.extend(impaired);
            }
            None => self.outq.push_back(frame.to_vec()),
        }
        self.flush(metrics);
    }

    /// Releases any frame the shim is holding back (end of a burst).
    pub fn flush_shim(&mut self, metrics: &MetricsRegistry) {
        if let Some(frame) = self.shim.as_mut().and_then(|s| s.flush()) {
            self.outq.push_back(frame);
        }
        self.flush(metrics);
    }

    /// Drains readable control frames from the centre (and flushes the
    /// outgoing queue).
    pub fn poll(&mut self, metrics: &MetricsRegistry) -> Vec<ControlFrame> {
        let mut controls = Vec::new();
        let mut raw = Vec::new();
        match &mut self.inner {
            MonitorInner::Udp(udp) => loop {
                match udp.recv(&mut self.scratch) {
                    Ok(n) => raw.push(self.scratch[..n].to_vec()),
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                    Err(_) => {
                        // ECONNREFUSED from a dead centre: typed count;
                        // the backoff machinery keeps retrying.
                        metrics
                            .counter("socket_recv_errors_total", &ROLE_MONITOR)
                            .inc();
                        break;
                    }
                }
            },
            MonitorInner::Tcp(conn) => raw = conn.poll_frames(&mut self.scratch),
        }
        for frame in raw {
            metrics
                .counter("socket_frames_received_total", &ROLE_MONITOR)
                .inc();
            match ControlFrame::decode(&frame) {
                Ok(c) => controls.push(c),
                Err(_) => {
                    metrics
                        .counter("socket_control_corrupt_total", &ROLE_MONITOR)
                        .inc();
                }
            }
        }
        self.flush(metrics);
        controls
    }

    fn flush(&mut self, metrics: &MetricsRegistry) {
        while let Some(frame) = self.outq.pop_front() {
            match &mut self.inner {
                MonitorInner::Udp(udp) => match udp.send(&frame) {
                    Ok(_) => {
                        metrics
                            .counter("socket_frames_sent_total", &ROLE_MONITOR)
                            .inc();
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => {
                        metrics
                            .counter("socket_send_stalls_total", &ROLE_MONITOR)
                            .inc();
                        self.outq.push_front(frame);
                        break;
                    }
                    Err(_) => {
                        // A dead centre refuses datagrams; the chunk is
                        // not lost — the resend schedule re-pushes it.
                        metrics
                            .counter("socket_send_errors_total", &ROLE_MONITOR)
                            .inc();
                    }
                },
                MonitorInner::Tcp(conn) => {
                    if conn.send_frame(&frame) {
                        metrics
                            .counter("socket_frames_sent_total", &ROLE_MONITOR)
                            .inc();
                    } else {
                        metrics
                            .counter("socket_send_errors_total", &ROLE_MONITOR)
                            .inc();
                    }
                }
            }
        }
        metrics
            .gauge("socket_send_queue_depth", &ROLE_MONITOR)
            .set(self.outq.len() as u64);
    }
}

// ---------------------------------------------------------------------
// Drivers
// ---------------------------------------------------------------------

/// How one centre-side epoch collection over the socket ended.
#[derive(Debug)]
pub enum CenterEpochEnd {
    /// The straggler policy was satisfied; here is the epoch.
    Collected(Box<CollectedEpoch>),
    /// The abort hook fired (shutdown signal, simulated crash) before the
    /// epoch completed.
    Aborted,
}

/// Drives one epoch of the centre's collector over `sock` until the
/// straggler policy is satisfied or `should_abort` returns true.
///
/// Each iteration: drain frames (chunks are offered to the collector,
/// acks flow back; `Hello` registers peers; late chunks of an older
/// epoch are answered with `Advance`), fire due retransmit NACKs, update
/// the `socket_reassembly_backlog` gauge, and nap briefly when idle.
/// `should_abort` is called once per iteration — the serve CLI uses it
/// for periodic checkpoints and signal-triggered shutdown.
pub fn run_center_epoch(
    sock: &mut CenterSocket,
    collector: &mut EpochCollector,
    clock: &dyn Clock,
    metrics: &MetricsRegistry,
    mut should_abort: impl FnMut(&EpochCollector) -> bool,
) -> CenterEpochEnd {
    loop {
        let frames = sock.poll(metrics);
        let idle = frames.is_empty();
        for frame in frames {
            if frame.len() >= 4 && frame[..4] == CONTROL_MAGIC {
                // Monitors only send Hello; anything else is ignored.
                continue;
            }
            let now = clock.now();
            match collector.offer(&frame, now) {
                ChunkDisposition::Accepted {
                    router_id,
                    cumulative_ack,
                } => {
                    sock.send_control(
                        &ControlFrame::Ack {
                            router_id,
                            epoch_id: collector.epoch_id(),
                            cumulative_ack,
                        },
                        metrics,
                    );
                }
                ChunkDisposition::Duplicate { router_id } => {
                    // Our ack may have been lost; repeat it.
                    let cumulative_ack = collector
                        .session(router_id)
                        .map_or(0, |s| s.cumulative_ack());
                    sock.send_control(
                        &ControlFrame::Ack {
                            router_id,
                            epoch_id: collector.epoch_id(),
                            cumulative_ack,
                        },
                        metrics,
                    );
                }
                ChunkDisposition::Late => {
                    // A monitor is still pushing an older epoch: tell it
                    // where the centre is now.
                    if let Some((router_id, _, _)) = ChunkFrame::salvage_header(&frame) {
                        sock.send_control(
                            &ControlFrame::Advance {
                                router_id,
                                epoch_id: collector.epoch_id(),
                            },
                            metrics,
                        );
                    }
                }
                ChunkDisposition::Corrupt
                | ChunkDisposition::UnknownRouter { .. }
                | ChunkDisposition::Inconsistent { .. } => {}
            }
        }
        let now = clock.now();
        for req in collector.poll(now) {
            let control = match req.missing {
                Missing::All => ControlFrame::NackAll {
                    router_id: req.router_id,
                    epoch_id: req.epoch_id,
                },
                Missing::Seqs(seqs) => ControlFrame::NackSeqs {
                    router_id: req.router_id,
                    epoch_id: req.epoch_id,
                    seqs,
                },
            };
            sock.send_control(&control, metrics);
        }
        let backlog: u64 = collector
            .sessions()
            .filter(|s| !s.is_complete())
            .map(|s| s.received() as u64)
            .sum();
        metrics.gauge("socket_reassembly_backlog", &[]).set(backlog);
        if should_abort(collector) {
            return CenterEpochEnd::Aborted;
        }
        if collector.ready(clock.now()) {
            let epoch = collector.finalize(clock.now());
            // Tell every monitor we heard from to move on; monitors that
            // miss this learn it from the Late→Advance reply instead.
            sock.broadcast(
                |router_id| ControlFrame::Advance {
                    router_id,
                    epoch_id: epoch.epoch_id + 1,
                },
                metrics,
            );
            return CenterEpochEnd::Collected(Box::new(epoch));
        }
        if idle {
            std::thread::sleep(std::time::Duration::from_micros(200));
        }
    }
}

/// How one monitor-side epoch ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MonitorEpochEnd {
    /// Every chunk was cumulatively acked, or the centre advanced past
    /// this epoch.
    Delivered,
    /// The centre told us to shut down.
    Shutdown,
    /// No delivery progress within the give-up horizon.
    TimedOut,
}

/// Resend/backoff parameters of the monitor-side epoch driver.
#[derive(Debug, Clone, Copy)]
pub struct MonitorEpochConfig {
    /// This monitor's router id.
    pub router_id: u64,
    /// The epoch being shipped.
    pub epoch_id: u64,
    /// Ticks of no progress before re-pushing unacked chunks.
    pub resend_after: u64,
    /// Cap on the resend backoff (doubles from `resend_after`).
    pub max_backoff: u64,
    /// Ticks before the epoch is abandoned entirely.
    pub give_up: u64,
}

/// Ships one epoch's chunk frames to the centre and drives the ack /
/// NACK / advance dialogue until delivery, shutdown or give-up.
///
/// The monitor re-pushes unacked chunks on capped exponential backoff —
/// this is the client half of crash recovery: when a restarted centre
/// resumes from its checkpoint, these re-pushed frames re-teach it the
/// monitor's address and fill the holes its NACKs ask for.
pub fn run_monitor_epoch(
    sock: &mut MonitorSocket,
    chunks: &[Vec<u8>],
    cfg: &MonitorEpochConfig,
    clock: &dyn Clock,
    metrics: &MetricsRegistry,
) -> MonitorEpochEnd {
    let started = clock.now();
    let mut cumulative: u32 = 0;
    let mut backoff = cfg.resend_after.max(1);
    let mut last_progress = started;
    let mut next_resend = started.saturating_add(backoff);

    sock.send(
        &ControlFrame::Hello {
            router_id: cfg.router_id,
        }
        .encode(),
        metrics,
    );
    for chunk in chunks {
        sock.send(chunk, metrics);
    }
    sock.flush_shim(metrics);

    loop {
        let mut resent = false;
        for control in sock.poll(metrics) {
            match control {
                ControlFrame::Ack {
                    router_id,
                    epoch_id,
                    cumulative_ack,
                } if router_id == cfg.router_id
                    && epoch_id == cfg.epoch_id
                    && cumulative_ack > cumulative =>
                {
                    cumulative = cumulative_ack;
                    last_progress = clock.now();
                    backoff = cfg.resend_after.max(1);
                }
                ControlFrame::NackAll {
                    router_id,
                    epoch_id,
                } if router_id == cfg.router_id && epoch_id == cfg.epoch_id => {
                    for chunk in chunks {
                        sock.send(chunk, metrics);
                    }
                    resent = true;
                }
                ControlFrame::NackSeqs {
                    router_id,
                    epoch_id,
                    seqs,
                } if router_id == cfg.router_id && epoch_id == cfg.epoch_id => {
                    for &seq in &seqs {
                        if let Some(chunk) = chunks.get(seq as usize) {
                            sock.send(chunk, metrics);
                        }
                    }
                    resent = true;
                }
                ControlFrame::Advance { epoch_id, .. } if epoch_id > cfg.epoch_id => {
                    return MonitorEpochEnd::Delivered;
                }
                ControlFrame::Shutdown { .. } => return MonitorEpochEnd::Shutdown,
                _ => {}
            }
        }
        if cumulative as usize >= chunks.len() {
            return MonitorEpochEnd::Delivered;
        }
        let now = clock.now();
        if now.saturating_sub(last_progress) >= cfg.give_up {
            metrics
                .counter("socket_epochs_abandoned_total", &ROLE_MONITOR)
                .inc();
            return MonitorEpochEnd::TimedOut;
        }
        if now >= next_resend && !resent {
            // No ack progress: re-push everything past the cumulative
            // ack (the centre may have died and restarted).
            for chunk in chunks.iter().skip(cumulative as usize) {
                sock.send(chunk, metrics);
            }
            metrics
                .counter("socket_resend_bursts_total", &ROLE_MONITOR)
                .inc();
            backoff = (backoff * 2).min(cfg.max_backoff.max(1));
        }
        if resent || now >= next_resend {
            sock.flush_shim(metrics);
            next_resend = now.saturating_add(backoff);
        }
        std::thread::sleep(std::time::Duration::from_micros(200));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::{ManualClock, TickClock};
    use crate::session::{CollectorConfig, SessionConfig, StragglerPolicy};
    use crate::transport::chunk_bundle;
    use std::time::Duration;

    #[test]
    fn control_frames_roundtrip() {
        let frames = [
            ControlFrame::Hello { router_id: 7 },
            ControlFrame::Ack {
                router_id: 1,
                epoch_id: 9,
                cumulative_ack: 42,
            },
            ControlFrame::NackAll {
                router_id: 2,
                epoch_id: 9,
            },
            ControlFrame::NackSeqs {
                router_id: 3,
                epoch_id: 9,
                seqs: vec![0, 5, 17],
            },
            ControlFrame::Advance {
                router_id: u64::MAX,
                epoch_id: 10,
            },
            ControlFrame::Shutdown { router_id: 4 },
        ];
        for f in frames {
            let wire = f.encode();
            assert_eq!(ControlFrame::decode(&wire).unwrap(), f);
        }
    }

    #[test]
    fn control_frame_bit_flips_are_rejected() {
        let wire = ControlFrame::NackSeqs {
            router_id: 3,
            epoch_id: 1,
            seqs: vec![2, 4],
        }
        .encode();
        for byte in 0..wire.len() {
            for bit in 0..8 {
                let mut mangled = wire.clone();
                mangled[byte] ^= 1 << bit;
                assert!(
                    ControlFrame::decode(&mangled).is_err(),
                    "flip {byte}:{bit} decoded"
                );
            }
        }
    }

    #[test]
    fn shim_is_deterministic_and_impairs_at_the_configured_rate() {
        let metrics = MetricsRegistry::new();
        let run = |seed: u64| {
            let mut shim = ImpairmentShim::new(ImpairmentConfig::soak(), seed);
            let mut sent = Vec::new();
            for i in 0..1000u32 {
                let frame = i.to_le_bytes().to_vec();
                sent.extend(shim.outgoing(&frame, &metrics));
            }
            sent.extend(shim.flush());
            sent
        };
        assert_eq!(run(11), run(11), "same seed must replay identically");
        assert_ne!(run(11), run(12), "different seeds must differ");
        let out = run(11);
        // 10% drop / 3% duplicate: the output count reflects both.
        assert!(out.len() < 1000, "drops must remove frames");
        let snapshot = metrics.snapshot();
        assert!(
            snapshot
                .counter("socket_impaired_total{kind=drop}")
                .unwrap()
                > 0
        );
        assert!(
            snapshot
                .counter("socket_impaired_total{kind=reorder}")
                .unwrap()
                > 0
        );
    }

    #[test]
    fn perfect_shim_is_a_passthrough() {
        let metrics = MetricsRegistry::new();
        let mut shim = ImpairmentShim::new(ImpairmentConfig::perfect(), 0);
        for i in 0..100u32 {
            let frame = i.to_le_bytes().to_vec();
            assert_eq!(shim.outgoing(&frame, &metrics), vec![frame]);
        }
        assert_eq!(shim.flush(), None);
    }

    fn quick_collector(epoch: u64, routers: &[u64], now: u64) -> EpochCollector {
        EpochCollector::new(
            epoch,
            routers.iter().copied(),
            CollectorConfig {
                deadline: 5_000,
                straggler: StragglerPolicy::WaitAll,
                session: SessionConfig {
                    base_backoff: 8,
                    max_backoff: 64,
                    max_retries: 40,
                    jitter: 3,
                },
            },
            42,
            now,
        )
    }

    /// One epoch, one router, real sockets on localhost: the monitor
    /// ships a bundle through the shim, the centre reassembles it
    /// byte-identically.
    fn socket_roundtrip(transport: Transport, impair: ImpairmentConfig) {
        let bundle: Vec<u8> = (0..40_000u32).map(|i| (i % 251) as u8).collect();
        let chunks = chunk_bundle(3, 0, &bundle, 1200);
        let metrics = MetricsRegistry::new();
        let clock = TickClock::new(Duration::from_micros(500));

        let mut center = CenterSocket::bind("127.0.0.1:0", transport).unwrap();
        let addr = center.local_addr().unwrap();
        let center_metrics = MetricsRegistry::new();
        let center_clock = clock.clone();
        let handle = std::thread::spawn(move || {
            let mut collector = quick_collector(0, &[3], center_clock.now());
            let end = run_center_epoch(
                &mut center,
                &mut collector,
                &center_clock,
                &center_metrics,
                |_| false,
            );
            match end {
                CenterEpochEnd::Collected(epoch) => (*epoch, center_metrics.snapshot()),
                CenterEpochEnd::Aborted => unreachable!(),
            }
        });

        let mut sock = MonitorSocket::connect(addr, transport).unwrap();
        sock.set_shim(ImpairmentShim::new(impair, 7));
        let end = run_monitor_epoch(
            &mut sock,
            &chunks,
            &MonitorEpochConfig {
                router_id: 3,
                epoch_id: 0,
                resend_after: 32,
                max_backoff: 256,
                give_up: 4_000,
            },
            &clock,
            &metrics,
        );
        assert_eq!(end, MonitorEpochEnd::Delivered);
        let (epoch, center_snapshot) = handle.join().unwrap();
        assert_eq!(epoch.frames.len(), 1);
        assert_eq!(epoch.frames[0].1, bundle, "reassembly must be exact");
        assert!(
            center_snapshot
                .counter("socket_frames_received_total{role=center}")
                .unwrap()
                > 0
        );
    }

    #[test]
    fn udp_roundtrip_perfect() {
        socket_roundtrip(Transport::Udp, ImpairmentConfig::perfect());
    }

    #[test]
    fn udp_roundtrip_impaired() {
        socket_roundtrip(Transport::Udp, ImpairmentConfig::soak());
    }

    #[test]
    fn tcp_roundtrip_perfect() {
        socket_roundtrip(Transport::Tcp, ImpairmentConfig::perfect());
    }

    #[test]
    fn tcp_roundtrip_impaired() {
        // Impairing the shim on a TCP link loses frames before the
        // stream, so retransmits still matter.
        socket_roundtrip(Transport::Tcp, ImpairmentConfig::soak());
    }

    #[test]
    fn dead_monitor_trips_the_real_clock_deadline_with_typed_timeout() {
        let metrics = MetricsRegistry::new();
        let clock = TickClock::new(Duration::from_micros(200));
        let mut center = CenterSocket::bind("127.0.0.1:0", Transport::Udp).unwrap();
        let mut collector = EpochCollector::new(
            0,
            [1, 2],
            CollectorConfig {
                deadline: 100,
                straggler: StragglerPolicy::Deadline,
                session: SessionConfig::default(),
            },
            1,
            clock.now(),
        );
        // Router 1 delivers; router 2 is dead and never connects.
        let addr = center.local_addr().unwrap();
        let clock2 = clock.clone();
        let sender = std::thread::spawn(move || {
            let m = MetricsRegistry::new();
            let mut sock = MonitorSocket::connect(addr, Transport::Udp).unwrap();
            let chunks = chunk_bundle(1, 0, b"present router", 64);
            run_monitor_epoch(
                &mut sock,
                &chunks,
                &MonitorEpochConfig {
                    router_id: 1,
                    epoch_id: 0,
                    resend_after: 16,
                    max_backoff: 64,
                    give_up: 2_000,
                },
                &clock2,
                &m,
            )
        });
        let end = run_center_epoch(&mut center, &mut collector, &clock, &metrics, |_| false);
        let CenterEpochEnd::Collected(epoch) = end else {
            panic!("epoch must finalize at the deadline");
        };
        assert_eq!(epoch.frames.len(), 1);
        assert_eq!(epoch.exclusions.len(), 1);
        assert!(matches!(
            epoch.exclusions[0].fault,
            crate::ingest::RouterFault::TimedOut { .. }
        ));
        assert_eq!(sender.join().unwrap(), MonitorEpochEnd::Delivered);
    }

    #[test]
    fn manual_clock_freeze_never_times_out_the_driver() {
        // With a frozen clock the deadline can never pass: the abort hook
        // is the only way out, proving the driver takes time exclusively
        // from the Clock trait.
        let metrics = MetricsRegistry::new();
        let clock = ManualClock::new(0);
        let mut center = CenterSocket::bind("127.0.0.1:0", Transport::Udp).unwrap();
        let mut collector = EpochCollector::new(
            0,
            [9],
            CollectorConfig {
                deadline: 1,
                straggler: StragglerPolicy::Deadline,
                session: SessionConfig::default(),
            },
            1,
            clock.now(),
        );
        let mut polls = 0;
        let end = run_center_epoch(&mut center, &mut collector, &clock, &metrics, |_| {
            polls += 1;
            polls > 50
        });
        assert!(matches!(end, CenterEpochEnd::Aborted));
    }
}
