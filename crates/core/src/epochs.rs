//! Epoch sampling and detection across epochs.
//!
//! Two operational ideas from the paper are implemented here:
//!
//! * **epoch sampling** (Section IV-D, possibility 5): "sample a small
//!   percent of the measurement epochs for analysis. Hopefully the
//!   patterns will span enough epochs to be detectable even with
//!   sampling" — [`EpochSampler`] decides which epochs the centre
//!   analyses, and [`catch_probability`] quantifies the hope;
//! * **alarm smoothing** (Section V-B.1): "some false negative are
//!   tolerable since such detection is performed every second. Even if
//!   the pattern is missed in one second, it may be caught in the
//!   following seconds" — [`AlarmTracker`] turns noisy per-epoch verdicts
//!   into a stable windowed alarm.

/// Deterministic 1-in-`every` epoch sampler.
#[derive(Debug, Clone)]
pub struct EpochSampler {
    every: usize,
    counter: usize,
}

impl EpochSampler {
    /// Analyse every `every`-th epoch (1 = analyse everything).
    ///
    /// # Panics
    /// Panics if `every == 0`.
    pub fn new(every: usize) -> Self {
        assert!(every > 0, "sampling period must be positive");
        EpochSampler { every, counter: 0 }
    }

    /// Advances the epoch counter; returns whether this epoch is analysed.
    pub fn tick(&mut self) -> bool {
        let analyse = self.counter.is_multiple_of(self.every);
        self.counter += 1;
        analyse
    }

    /// Epochs seen so far.
    pub fn epochs_seen(&self) -> usize {
        self.counter
    }

    /// Epochs analysed so far.
    pub fn epochs_analyzed(&self) -> usize {
        self.counter.div_ceil(self.every)
    }
}

/// Probability of catching a pattern at least once when it spans
/// `pattern_epochs` consecutive epochs, the per-analysed-epoch detection
/// probability is `per_epoch`, and one epoch in `every` is analysed:
/// `1 − (1 − per_epoch)^⌊pattern_epochs/every⌋` (the conservative floor —
/// phase alignment can grant one more analysed epoch).
pub fn catch_probability(per_epoch: f64, pattern_epochs: usize, every: usize) -> f64 {
    assert!((0.0..=1.0).contains(&per_epoch), "probability in [0,1]");
    assert!(every > 0, "sampling period must be positive");
    let analysed = pattern_epochs / every;
    1.0 - (1.0 - per_epoch).powi(analysed as i32)
}

/// Windowed alarm: fire when at least `min_alarms` of the last `window`
/// analysed epochs alarmed. Smooths both FP (a single noisy epoch cannot
/// fire a 2-of-w alarm) and FN (one missed epoch does not clear it).
#[derive(Debug, Clone)]
pub struct AlarmTracker {
    window: usize,
    min_alarms: usize,
    history: std::collections::VecDeque<bool>,
}

impl AlarmTracker {
    /// Creates a tracker firing on `min_alarms`-of-`window`.
    ///
    /// # Panics
    /// Panics unless `1 ≤ min_alarms ≤ window`.
    pub fn new(window: usize, min_alarms: usize) -> Self {
        assert!(
            (1..=window).contains(&min_alarms),
            "need 1 <= min_alarms <= window"
        );
        AlarmTracker {
            window,
            min_alarms,
            history: std::collections::VecDeque::with_capacity(window),
        }
    }

    /// Records one epoch verdict; returns the smoothed alarm state.
    pub fn record(&mut self, epoch_alarm: bool) -> bool {
        if self.history.len() == self.window {
            self.history.pop_front();
        }
        self.history.push_back(epoch_alarm);
        self.is_firing()
    }

    /// Current smoothed alarm state.
    pub fn is_firing(&self) -> bool {
        self.history.iter().filter(|&&a| a).count() >= self.min_alarms
    }

    /// Alarms inside the current window.
    pub fn alarms_in_window(&self) -> usize {
        self.history.iter().filter(|&&a| a).count()
    }

    /// Clears the history (e.g. after an incident is handled).
    pub fn reset(&mut self) {
        self.history.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampler_period() {
        let mut s = EpochSampler::new(3);
        let picks: Vec<bool> = (0..9).map(|_| s.tick()).collect();
        assert_eq!(
            picks,
            vec![true, false, false, true, false, false, true, false, false]
        );
        assert_eq!(s.epochs_seen(), 9);
        assert_eq!(s.epochs_analyzed(), 3);
    }

    #[test]
    fn sampler_every_one_analyses_all() {
        let mut s = EpochSampler::new(1);
        assert!((0..5).all(|_| s.tick()));
        assert_eq!(s.epochs_analyzed(), 5);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn sampler_zero_rejected() {
        EpochSampler::new(0);
    }

    #[test]
    fn catch_probability_math() {
        // Paper-style numbers: FN 16.6% per epoch, pattern spans 30
        // epochs, 1-in-10 sampling: 3 analysed epochs.
        let p = catch_probability(1.0 - 0.166, 30, 10);
        let expect = 1.0 - 0.166f64.powi(3);
        assert!((p - expect).abs() < 1e-12);
        // Degenerate: pattern shorter than the period may never be seen.
        assert_eq!(catch_probability(0.9, 5, 10), 0.0);
        assert_eq!(catch_probability(0.0, 100, 1), 0.0);
        assert!((catch_probability(1.0, 1, 1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn tracker_two_of_three() {
        let mut t = AlarmTracker::new(3, 2);
        assert!(!t.record(true), "single alarm must not fire 2-of-3");
        assert!(t.record(true), "two alarms fire");
        assert!(t.record(false), "2-of-3 still satisfied");
        assert!(!t.record(false), "window slid past the alarms");
        assert_eq!(t.alarms_in_window(), 1);
    }

    #[test]
    fn tracker_smooths_single_false_positive() {
        let mut t = AlarmTracker::new(5, 2);
        for _ in 0..4 {
            assert!(!t.record(false));
        }
        assert!(!t.record(true), "one spurious epoch must not fire");
    }

    #[test]
    fn tracker_survives_single_miss() {
        let mut t = AlarmTracker::new(5, 2);
        t.record(true);
        t.record(true);
        assert!(t.record(false), "one missed epoch must not clear the alarm");
    }

    #[test]
    fn tracker_reset() {
        let mut t = AlarmTracker::new(2, 1);
        t.record(true);
        assert!(t.is_firing());
        t.reset();
        assert!(!t.is_firing());
    }

    #[test]
    #[should_panic(expected = "min_alarms")]
    fn tracker_invalid_config() {
        AlarmTracker::new(2, 3);
    }
}
