//! One monitoring point: both collectors wired to a router's traffic.

use bytes::{BufMut, Bytes, BytesMut};
use dcs_collect::{
    AlignedCollector, AlignedConfig, AlignedDigest, AlignedDigestView, UnalignedCollector,
    UnalignedConfig, UnalignedDigest, UnalignedDigestView, WireError,
};
use dcs_traffic::Packet;

/// Configuration of a monitoring point.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct MonitorConfig {
    /// Aligned-case collector settings (shared hash seed across routers).
    pub aligned: AlignedConfig,
    /// Unaligned-case collector settings (shared content-hash seed; the
    /// router seed is overridden per router).
    pub unaligned: UnalignedConfig,
}

impl MonitorConfig {
    /// A deployment-wide configuration scaled for tests/examples: both
    /// collectors share the epoch seed; each router gets distinct offsets.
    pub fn small(epoch_seed: u64, aligned_bits: usize, groups: usize) -> Self {
        MonitorConfig {
            aligned: AlignedConfig::small(aligned_bits, epoch_seed),
            unaligned: UnalignedConfig::small(groups, epoch_seed, 0),
        }
    }
}

/// The digest bundle one router ships per epoch.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct RouterDigest {
    /// The shipping router's index.
    pub router_id: usize,
    /// The epoch this bundle summarises (0-based per monitoring point);
    /// the ingest layer rejects bundles that desync from the epoch's
    /// consensus id.
    pub epoch_id: u64,
    /// Aligned-case digest.
    pub aligned: AlignedDigest,
    /// Unaligned-case digest.
    pub unaligned: UnalignedDigest,
}

/// Magic for whole-bundle wire frames (`b"DCSR"`).
pub const BUNDLE_MAGIC: [u8; 4] = *b"DCSR";

const BUNDLE_VERSION: u8 = 1;
const BUNDLE_HEADER: usize = 21; // magic + version + router_id + epoch_id

impl RouterDigest {
    /// Total encoded digest bytes (both cases).
    pub fn encoded_len(&self) -> usize {
        self.aligned.bitmap.encoded_len() + self.unaligned.encoded_len()
    }

    /// Raw traffic bytes summarised.
    pub fn raw_bytes(&self) -> u64 {
        self.aligned.raw_bytes
    }

    /// Encodes the whole bundle as one wire frame: bundle header (magic,
    /// version, router id, epoch id), then the aligned and unaligned
    /// digest frames. This is what the measurement plane ships.
    pub fn encode_wire(&self) -> Result<Bytes, WireError> {
        let aligned = self.aligned.encode_wire();
        let unaligned = self.unaligned.encode_wire()?;
        let mut buf = BytesMut::with_capacity(BUNDLE_HEADER + aligned.len() + unaligned.len());
        buf.put_slice(&BUNDLE_MAGIC);
        buf.put_u8(BUNDLE_VERSION);
        buf.put_u64_le(self.router_id as u64);
        buf.put_u64_le(self.epoch_id);
        buf.put_slice(&aligned);
        buf.put_slice(&unaligned);
        Ok(buf.freeze())
    }

    /// Decodes a frame produced by [`RouterDigest::encode_wire`],
    /// returning the bundle and the bytes consumed. Never panics on
    /// arbitrary input — every failure is a typed [`WireError`].
    pub fn decode_wire(buf: &[u8]) -> Result<(RouterDigest, usize), WireError> {
        if buf.len() < BUNDLE_HEADER {
            return Err(WireError::Truncated);
        }
        if buf[..4] != BUNDLE_MAGIC {
            let mut m = [0u8; 4];
            m.copy_from_slice(&buf[..4]);
            return Err(WireError::BadMagic(m));
        }
        if buf[4] != BUNDLE_VERSION {
            return Err(WireError::BadVersion(buf[4]));
        }
        let router_id = u64::from_le_bytes(buf[5..13].try_into().expect("8-byte slice"));
        let router_id = usize::try_from(router_id)
            .map_err(|_| WireError::Malformed("router id exceeds usize"))?;
        let epoch_id = u64::from_le_bytes(buf[13..21].try_into().expect("8-byte slice"));
        let rest = &buf[BUNDLE_HEADER..];
        let (aligned, used_a) = AlignedDigest::decode_wire(rest)?;
        let (unaligned, used_u) = UnalignedDigest::decode_wire(&rest[used_a..])?;
        Ok((
            RouterDigest {
                router_id,
                epoch_id,
                aligned,
                unaligned,
            },
            BUNDLE_HEADER + used_a + used_u,
        ))
    }
}

/// Borrowed, validated view of one [`RouterDigest`] wire frame.
///
/// [`RouterDigestView::parse`] applies exactly the checks of
/// [`RouterDigest::decode_wire`] — bundle header, both digest frames,
/// every embedded bitmap — but leaves the bitmap bytes on the wire
/// instead of copying them into owned buffers. The analysis centre fuses
/// digests straight out of the received frames through these views, so
/// its steady-state ingest path allocates nothing per digest.
#[derive(Clone, Copy, Debug)]
pub struct RouterDigestView<'a> {
    /// The shipping router's index.
    pub router_id: usize,
    /// The epoch this bundle summarises.
    pub epoch_id: u64,
    /// Aligned-case digest view.
    pub aligned: AlignedDigestView<'a>,
    /// Unaligned-case digest view.
    pub unaligned: UnalignedDigestView<'a>,
}

impl<'a> RouterDigestView<'a> {
    /// Validates the frame at the front of `buf`, returning the view and
    /// the bytes it covers. Never panics on arbitrary input — every
    /// failure is a typed [`WireError`].
    pub fn parse(buf: &'a [u8]) -> Result<(RouterDigestView<'a>, usize), WireError> {
        if buf.len() < BUNDLE_HEADER {
            return Err(WireError::Truncated);
        }
        if buf[..4] != BUNDLE_MAGIC {
            let mut m = [0u8; 4];
            m.copy_from_slice(&buf[..4]);
            return Err(WireError::BadMagic(m));
        }
        if buf[4] != BUNDLE_VERSION {
            return Err(WireError::BadVersion(buf[4]));
        }
        let router_id = u64::from_le_bytes(buf[5..13].try_into().expect("8-byte slice"));
        let router_id = usize::try_from(router_id)
            .map_err(|_| WireError::Malformed("router id exceeds usize"))?;
        let epoch_id = u64::from_le_bytes(buf[13..21].try_into().expect("8-byte slice"));
        let rest = &buf[BUNDLE_HEADER..];
        let (aligned, used_a) = AlignedDigestView::parse(rest)?;
        let (unaligned, used_u) = UnalignedDigestView::parse(&rest[used_a..])?;
        Ok((
            RouterDigestView {
                router_id,
                epoch_id,
                aligned,
                unaligned,
            },
            BUNDLE_HEADER + used_a + used_u,
        ))
    }

    /// Total encoded digest bytes (both cases), as counted by
    /// [`RouterDigest::encoded_len`].
    pub fn encoded_len(&self) -> usize {
        self.aligned.bitmap.encoded_len() + self.unaligned.encoded_len()
    }

    /// Raw traffic bytes summarised.
    pub fn raw_bytes(&self) -> u64 {
        self.aligned.raw_bytes
    }

    /// Copies the view into an owned [`RouterDigest`].
    pub fn to_owned(&self) -> RouterDigest {
        RouterDigest {
            router_id: self.router_id,
            epoch_id: self.epoch_id,
            aligned: self.aligned.to_owned(),
            unaligned: self.unaligned.to_owned(),
        }
    }
}

/// Bounded resend buffer: the chunk frames of one shipped epoch, kept
/// until the next epoch closes so the analysis centre's retransmit
/// requests (and post-restart recovery) can be served. Acked chunks are
/// pruned to bound memory further.
#[derive(Debug)]
struct ResendBuffer {
    epoch_id: u64,
    chunks: Vec<Option<Vec<u8>>>,
}

/// A monitoring point running both streaming modules over one router's
/// traffic.
#[derive(Debug)]
pub struct MonitoringPoint {
    router_id: usize,
    epoch: u64,
    aligned: AlignedCollector,
    unaligned: UnalignedCollector,
    resend: Option<ResendBuffer>,
}

impl MonitoringPoint {
    /// Creates the monitoring point for `router_id`, salting the
    /// unaligned collector's offsets and flow split with the router id.
    pub fn new(router_id: usize, cfg: &MonitorConfig) -> Self {
        let mut ucfg = cfg.unaligned.clone();
        ucfg.router_seed = ucfg
            .router_seed
            .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(router_id as u64 + 1));
        MonitoringPoint {
            router_id,
            epoch: 0,
            aligned: AlignedCollector::new(cfg.aligned.clone()),
            unaligned: UnalignedCollector::new(ucfg),
            resend: None,
        }
    }

    /// Epochs this point has finished (= the next bundle's epoch id).
    pub fn epochs_finished(&self) -> u64 {
        self.epoch
    }

    /// The router this point monitors.
    pub fn router_id(&self) -> usize {
        self.router_id
    }

    /// Feeds one packet through both streaming modules.
    pub fn observe(&mut self, pkt: &Packet) {
        self.aligned.observe(pkt);
        self.unaligned.observe(pkt);
    }

    /// Feeds a whole epoch of packets.
    pub fn observe_all<'a>(&mut self, pkts: impl IntoIterator<Item = &'a Packet>) {
        for p in pkts {
            self.observe(p);
        }
    }

    /// Read access to the aligned collector (diagnostics).
    pub fn aligned(&self) -> &AlignedCollector {
        &self.aligned
    }

    /// Read access to the unaligned collector (diagnostics).
    pub fn unaligned(&self) -> &UnalignedCollector {
        &self.unaligned
    }

    /// Closes the epoch and ships the digest bundle.
    pub fn finish_epoch(&mut self) -> RouterDigest {
        let epoch_id = self.epoch;
        self.epoch += 1;
        RouterDigest {
            router_id: self.router_id,
            epoch_id,
            aligned: self.aligned.finish_epoch(),
            unaligned: self.unaligned.finish_epoch(),
        }
    }

    /// Closes the epoch and ships it as chunk frames (see
    /// [`crate::transport`]): the wire bundle split into CRC-trailed
    /// chunks of at most `max_payload` digest bytes each. The chunks are
    /// also retained in a bounded resend buffer — exactly one epoch deep,
    /// replacing the previous epoch's — so the analysis centre can
    /// [`resend`](Self::resend) lost or corrupted chunks until the next
    /// epoch closes.
    pub fn finish_epoch_chunks(&mut self, max_payload: usize) -> Result<Vec<Vec<u8>>, WireError> {
        let digest = self.finish_epoch();
        let wire = digest.encode_wire()?;
        let chunks = crate::transport::chunk_bundle(
            self.router_id as u64,
            digest.epoch_id,
            &wire,
            max_payload,
        );
        self.resend = Some(ResendBuffer {
            epoch_id: digest.epoch_id,
            chunks: chunks.iter().cloned().map(Some).collect(),
        });
        Ok(chunks)
    }

    /// Serves a retransmit request from the resend buffer: the still-held
    /// chunk frames of `epoch_id` selected by `missing`. Empty when the
    /// buffer holds a different epoch (the request outlived the buffer's
    /// one-epoch retention) or the requested chunks were pruned by
    /// [`ack`](Self::ack).
    pub fn resend(&self, epoch_id: u64, missing: &crate::session::Missing) -> Vec<Vec<u8>> {
        let Some(buf) = self.resend.as_ref().filter(|b| b.epoch_id == epoch_id) else {
            return Vec::new();
        };
        match missing {
            crate::session::Missing::All => buf.chunks.iter().flatten().cloned().collect(),
            crate::session::Missing::Seqs(seqs) => seqs
                .iter()
                .filter_map(|&s| buf.chunks.get(s as usize).and_then(Clone::clone))
                .collect(),
        }
    }

    /// Applies a cumulative ack from the collector: every chunk of
    /// `epoch_id` below `cumulative_ack` is pruned from the resend
    /// buffer, releasing its memory.
    pub fn ack(&mut self, epoch_id: u64, cumulative_ack: u32) {
        if let Some(buf) = self.resend.as_mut().filter(|b| b.epoch_id == epoch_id) {
            for c in buf.chunks.iter_mut().take(cumulative_ack as usize) {
                *c = None;
            }
        }
    }

    /// Chunk frames still held in the resend buffer (diagnostics; bounds
    /// the buffer's memory in tests).
    pub fn resend_buffered(&self) -> usize {
        self.resend
            .as_ref()
            .map_or(0, |b| b.chunks.iter().flatten().count())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcs_traffic::{gen, BackgroundConfig, SizeMix};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn monitoring_point_round() {
        let mut r = StdRng::seed_from_u64(1);
        let cfg = MonitorConfig::small(7, 1 << 14, 8);
        let mut mp = MonitoringPoint::new(3, &cfg);
        let pkts = gen::generate_epoch(
            &mut r,
            &BackgroundConfig {
                packets: 500,
                flows: 100,
                zipf_exponent: 1.0,
                size_mix: SizeMix::constant(536),
            },
        );
        mp.observe_all(&pkts);
        let d = mp.finish_epoch();
        assert_eq!(d.router_id, 3);
        assert_eq!(d.epoch_id, 0);
        assert_eq!(d.aligned.packets_seen, 500);
        assert_eq!(d.unaligned.packets_sampled, 500);
        assert!(d.raw_bytes() > 0);
        assert!(d.encoded_len() > 0);
        // The next epoch's bundle carries the next id.
        assert_eq!(mp.epochs_finished(), 1);
        assert_eq!(mp.finish_epoch().epoch_id, 1);
    }

    #[test]
    fn bundle_wire_roundtrip() {
        let mut r = StdRng::seed_from_u64(2);
        let cfg = MonitorConfig::small(7, 1 << 12, 4);
        let mut mp = MonitoringPoint::new(9, &cfg);
        let pkts = gen::generate_epoch(
            &mut r,
            &BackgroundConfig {
                packets: 300,
                flows: 60,
                zipf_exponent: 1.0,
                size_mix: SizeMix::constant(536),
            },
        );
        mp.observe_all(&pkts);
        mp.finish_epoch(); // burn epoch 0
        mp.observe_all(&pkts);
        let d = mp.finish_epoch();
        let wire = d.encode_wire().expect("bundle fits the wire format");
        let (back, used) = RouterDigest::decode_wire(&wire).expect("roundtrip");
        assert_eq!(used, wire.len());
        assert_eq!(back.router_id, 9);
        assert_eq!(back.epoch_id, 1);
        assert_eq!(back.aligned.bitmap, d.aligned.bitmap);
        assert_eq!(back.unaligned, d.unaligned);
    }

    #[test]
    fn bundle_wire_rejects_corruption_without_panicking() {
        let cfg = MonitorConfig::small(7, 1 << 10, 2);
        let mut mp = MonitoringPoint::new(1, &cfg);
        let wire = mp
            .finish_epoch()
            .encode_wire()
            .expect("bundle fits the wire format");
        for cut in 0..wire.len() {
            assert!(
                RouterDigest::decode_wire(&wire[..cut]).is_err(),
                "strict prefix of {cut} bytes decoded"
            );
        }
        let mut bad = wire.to_vec();
        bad[0] = b'X';
        assert!(matches!(
            RouterDigest::decode_wire(&bad),
            Err(dcs_collect::WireError::BadMagic(_))
        ));
        let mut bad = wire.to_vec();
        bad[4] = 9;
        assert!(matches!(
            RouterDigest::decode_wire(&bad),
            Err(dcs_collect::WireError::BadVersion(9))
        ));
    }

    #[test]
    fn bundle_view_matches_owned_decode() {
        let mut r = StdRng::seed_from_u64(4);
        let cfg = MonitorConfig::small(7, 1 << 12, 4);
        let mut mp = MonitoringPoint::new(11, &cfg);
        let pkts = gen::generate_epoch(
            &mut r,
            &BackgroundConfig {
                packets: 300,
                flows: 60,
                zipf_exponent: 1.0,
                size_mix: SizeMix::constant(536),
            },
        );
        mp.observe_all(&pkts);
        let d = mp.finish_epoch();
        let wire = d.encode_wire().expect("bundle fits the wire format");
        let (owned, used_owned) = RouterDigest::decode_wire(&wire).unwrap();
        let (view, used_view) = RouterDigestView::parse(&wire).unwrap();
        assert_eq!(used_view, used_owned);
        assert_eq!(view.router_id, owned.router_id);
        assert_eq!(view.epoch_id, owned.epoch_id);
        assert_eq!(view.encoded_len(), owned.encoded_len());
        assert_eq!(view.raw_bytes(), owned.raw_bytes());
        let back = view.to_owned();
        assert_eq!(back.aligned, owned.aligned);
        assert_eq!(back.unaligned, owned.unaligned);
        // The view rejects every strict prefix, like the owned decoder.
        for cut in 0..wire.len() {
            assert!(
                RouterDigestView::parse(&wire[..cut]).is_err(),
                "strict prefix of {cut} bytes parsed"
            );
        }
    }

    #[test]
    fn resend_buffer_serves_one_epoch_and_prunes_on_ack() {
        use crate::session::Missing;

        let cfg = MonitorConfig::small(7, 1 << 12, 4);
        let mut mp = MonitoringPoint::new(6, &cfg);
        let mut r = StdRng::seed_from_u64(8);
        let pkts = gen::generate_epoch(
            &mut r,
            &BackgroundConfig {
                packets: 300,
                flows: 60,
                zipf_exponent: 1.0,
                size_mix: SizeMix::constant(536),
            },
        );
        mp.observe_all(&pkts);
        let chunks = mp.finish_epoch_chunks(256).expect("bundle fits the wire");
        assert!(chunks.len() > 1, "bundle should need several chunks");
        assert_eq!(mp.resend_buffered(), chunks.len());

        // Reassembling the resent chunks reproduces the original wire
        // bundle exactly.
        let all = mp.resend(0, &Missing::All);
        assert_eq!(all, chunks);
        let some = mp.resend(0, &Missing::Seqs(vec![1, 3]));
        assert_eq!(some, vec![chunks[1].clone(), chunks[3].clone()]);
        // Wrong epoch: nothing.
        assert!(mp.resend(9, &Missing::All).is_empty());

        // Acks prune; pruned chunks are no longer resendable.
        mp.ack(0, 2);
        assert_eq!(mp.resend_buffered(), chunks.len() - 2);
        assert_eq!(
            mp.resend(0, &Missing::Seqs(vec![0, 1, 2])),
            vec![chunks[2].clone()]
        );

        // The next epoch evicts the buffer entirely (one epoch deep).
        mp.observe_all(&pkts);
        let next = mp.finish_epoch_chunks(256).expect("bundle fits the wire");
        assert!(mp.resend(0, &Missing::All).is_empty());
        assert_eq!(mp.resend(1, &Missing::All), next);
    }

    #[test]
    fn distinct_routers_get_distinct_offsets() {
        let cfg = MonitorConfig::small(7, 1 << 10, 4);
        let a = MonitoringPoint::new(0, &cfg);
        let b = MonitoringPoint::new(1, &cfg);
        assert_ne!(
            a.unaligned().offsets(),
            b.unaligned().offsets(),
            "routers must sample different offsets"
        );
    }
}
