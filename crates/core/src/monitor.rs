//! One monitoring point: both collectors wired to a router's traffic.

use bytes::{BufMut, Bytes, BytesMut};
use dcs_collect::{
    artifact, AlignedCollector, AlignedConfig, AlignedDigest, AlignedDigestView, Artifact,
    UnalignedCollector, UnalignedConfig, UnalignedDigest, UnalignedDigestView, WireError,
};
use dcs_hash::IndexHasher;
use dcs_sketch::{DistinctSketch, SketchDomain, SpaceSaving};
use dcs_traffic::{FlowLabel, Packet};

/// Sidecar sketch settings for a monitoring point: a heavy-hitter
/// summary computed beside the bitmap and shipped as a typed artifact
/// in the same bundle.
///
/// `cap == 0` disables the sketch entirely — the bundle then encodes
/// byte-identically to the pre-artifact wire format.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct SketchSpec {
    /// Tracked keys (0 disables the sketch).
    pub cap: usize,
    /// What the sketch keys on (must match across routers so the centre
    /// can merge child sketches).
    pub domain: SketchDomain,
    /// KMV sample size for the distinct-counting variant (ignored by
    /// the counter domains).
    pub kmv_size: usize,
}

impl SketchSpec {
    /// No sketch: the bundle stays on the pre-artifact wire format.
    pub fn disabled() -> Self {
        SketchSpec {
            cap: 0,
            domain: SketchDomain::ContentIndex,
            kmv_size: 16,
        }
    }

    /// Heavy *content*: Space-Saving over the aligned bitmap column each
    /// payload hashes to, so the centre can seed its refined search.
    pub fn heavy_content(cap: usize) -> Self {
        SketchSpec {
            cap,
            domain: SketchDomain::ContentIndex,
            kmv_size: 16,
        }
    }

    /// DRDoS reflection: distinct *sources* per (src-port, dst-AS) key,
    /// the distinct-heavy-hitter variant.
    pub fn drdos(cap: usize) -> Self {
        SketchSpec {
            cap,
            domain: SketchDomain::SrcPortDstAs,
            kmv_size: 16,
        }
    }

    /// Elephant flows: Space-Saving over flow labels weighted by payload
    /// bytes.
    pub fn elephant_flows(cap: usize) -> Self {
        SketchSpec {
            cap,
            domain: SketchDomain::FlowBytes,
            kmv_size: 16,
        }
    }

    /// Whether a sketch is collected at all.
    pub fn enabled(&self) -> bool {
        self.cap > 0
    }
}

/// The (src-port, destination-AS) key of the DRDoS domain. The /16
/// prefix of the destination address stands in for its AS in this
/// reproduction's synthetic address space.
pub fn src_port_dst_as_key(flow: &FlowLabel) -> u64 {
    (u64::from(flow.src_port) << 32) | u64::from(flow.dst_ip >> 16)
}

/// Configuration of a monitoring point.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct MonitorConfig {
    /// Aligned-case collector settings (shared hash seed across routers).
    pub aligned: AlignedConfig,
    /// Unaligned-case collector settings (shared content-hash seed; the
    /// router seed is overridden per router).
    pub unaligned: UnalignedConfig,
    /// Sidecar heavy-hitter sketch (disabled by default).
    pub sketch: SketchSpec,
}

impl MonitorConfig {
    /// A deployment-wide configuration scaled for tests/examples: both
    /// collectors share the epoch seed; each router gets distinct offsets.
    pub fn small(epoch_seed: u64, aligned_bits: usize, groups: usize) -> Self {
        MonitorConfig {
            aligned: AlignedConfig::small(aligned_bits, epoch_seed),
            unaligned: UnalignedConfig::small(groups, epoch_seed, 0),
            sketch: SketchSpec::disabled(),
        }
    }

    /// The same configuration with a sidecar sketch enabled.
    pub fn with_sketch(mut self, spec: SketchSpec) -> Self {
        self.sketch = spec;
        self
    }
}

/// Streaming heavy-hitter sketch beside the bitmap collectors. Keys are
/// derived per [`SketchDomain`]; the kernel is Space-Saving for the
/// counter domains and the per-key KMV distinct sketch for
/// [`SketchDomain::SrcPortDstAs`] (distinct *sources* per key is what
/// identifies a reflection fan-in).
#[derive(Debug)]
pub struct SketchCollector {
    domain: SketchDomain,
    hasher: IndexHasher,
    kernel: SketchKernel,
}

#[derive(Debug)]
enum SketchKernel {
    Heavy(SpaceSaving),
    Distinct(DistinctSketch),
}

impl SketchCollector {
    /// Builds the collector for `spec`, hashing with the deployment-wide
    /// `seed` so every router derives identical keys.
    ///
    /// # Panics
    /// Panics when `spec` is disabled (`cap == 0`).
    pub fn new(spec: &SketchSpec, seed: u64) -> Self {
        assert!(spec.enabled(), "sketch spec is disabled");
        let kernel = match spec.domain {
            SketchDomain::SrcPortDstAs => {
                SketchKernel::Distinct(DistinctSketch::new(spec.cap, spec.kmv_size.max(2)))
            }
            SketchDomain::ContentIndex | SketchDomain::FlowBytes => {
                SketchKernel::Heavy(SpaceSaving::new(spec.cap))
            }
        };
        SketchCollector {
            domain: spec.domain,
            hasher: IndexHasher::new(seed ^ 0x5C5C_5C5C_5C5C_5C5Cu64),
            kernel,
        }
    }

    /// The domain this sketch keys on.
    pub fn domain(&self) -> SketchDomain {
        self.domain
    }

    /// Feeds one packet, reusing the aligned collector's hashing rule
    /// for the content-index domain.
    pub fn observe(&mut self, pkt: &Packet, aligned: &AlignedCollector) {
        match (&mut self.kernel, self.domain) {
            (SketchKernel::Heavy(ss), SketchDomain::ContentIndex) => {
                if let Some(idx) = aligned.index_of(pkt) {
                    ss.offer(idx as u64, 1);
                }
            }
            (SketchKernel::Heavy(ss), SketchDomain::FlowBytes) => {
                if pkt.has_payload() {
                    let key = self.hasher.hash64(&pkt.flow.to_bytes());
                    ss.offer(key, pkt.payload.len() as u64);
                }
            }
            (SketchKernel::Distinct(ds), SketchDomain::SrcPortDstAs) => {
                let key = src_port_dst_as_key(&pkt.flow);
                let item = self.hasher.hash64(&pkt.flow.src_ip.to_le_bytes());
                ds.offer(key, item);
            }
            _ => unreachable!("kernel/domain pairing is fixed at construction"),
        }
    }

    /// Closes the epoch: encodes the `DCSS` payload and resets.
    pub fn finish_epoch(&mut self) -> Vec<u8> {
        let domain = self.domain.to_u8();
        match &mut self.kernel {
            SketchKernel::Heavy(ss) => {
                let bytes = dcs_sketch::wire::encode_space_saving(ss, domain);
                ss.clear();
                bytes
            }
            SketchKernel::Distinct(ds) => {
                let bytes = dcs_sketch::wire::encode_distinct(ds, domain);
                ds.clear();
                bytes
            }
        }
    }
}

/// The digest bundle one router ships per epoch.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct RouterDigest {
    /// The shipping router's index.
    pub router_id: usize,
    /// The epoch this bundle summarises (0-based per monitoring point);
    /// the ingest layer rejects bundles that desync from the epoch's
    /// consensus id.
    pub epoch_id: u64,
    /// Aligned-case digest.
    pub aligned: AlignedDigest,
    /// Unaligned-case digest.
    pub unaligned: UnalignedDigest,
    /// Sidecar artifacts riding beside the digests (empty on the
    /// pre-artifact wire format).
    pub artifacts: Vec<Artifact>,
}

/// Magic for whole-bundle wire frames (`b"DCSR"`).
pub const BUNDLE_MAGIC: [u8; 4] = *b"DCSR";

/// Pre-artifact frames: header + aligned + unaligned digest.
const BUNDLE_VERSION_V1: u8 = 1;
/// Artifact-bearing frames: v1 layout + an artifact section at the end.
/// Emitted only when the section is non-empty, so artifact-free bundles
/// stay byte-identical to v1.
const BUNDLE_VERSION_V2: u8 = 2;
const BUNDLE_HEADER: usize = 21; // magic + version + router_id + epoch_id

impl RouterDigest {
    /// Total encoded digest bytes (both cases; excludes sidecar
    /// artifacts — see [`RouterDigest::artifact_bytes`]).
    pub fn encoded_len(&self) -> usize {
        self.aligned.bitmap.encoded_len() + self.unaligned.encoded_len()
    }

    /// Wire bytes of the sidecar artifact section (0 when empty).
    pub fn artifact_bytes(&self) -> usize {
        artifact::section_len(&self.artifacts)
    }

    /// Raw traffic bytes summarised.
    pub fn raw_bytes(&self) -> u64 {
        self.aligned.raw_bytes
    }

    /// The first `DCSS` sketch artifact payload, if any.
    pub fn sketch_payload(&self) -> Option<&[u8]> {
        self.artifacts
            .iter()
            .find(|a| a.kind == dcs_collect::ARTIFACT_KIND_SKETCH)
            .map(|a| &a.payload[..])
    }

    /// Encodes the whole bundle as one wire frame: bundle header (magic,
    /// version, router id, epoch id), the aligned and unaligned digest
    /// frames, then — v2 only — the artifact section. This is what the
    /// measurement plane ships. Bundles without artifacts encode as v1,
    /// byte-identical to the pre-artifact format.
    pub fn encode_wire(&self) -> Result<Bytes, WireError> {
        let aligned = self.aligned.encode_wire();
        let unaligned = self.unaligned.encode_wire()?;
        let section = artifact::section_len(&self.artifacts);
        let mut buf =
            BytesMut::with_capacity(BUNDLE_HEADER + aligned.len() + unaligned.len() + section);
        buf.put_slice(&BUNDLE_MAGIC);
        buf.put_u8(if self.artifacts.is_empty() {
            BUNDLE_VERSION_V1
        } else {
            BUNDLE_VERSION_V2
        });
        buf.put_u64_le(self.router_id as u64);
        buf.put_u64_le(self.epoch_id);
        buf.put_slice(&aligned);
        buf.put_slice(&unaligned);
        artifact::encode_section(&self.artifacts, &mut buf)?;
        Ok(buf.freeze())
    }

    /// Decodes a frame produced by [`RouterDigest::encode_wire`],
    /// returning the bundle and the bytes consumed. Accepts both the
    /// pre-artifact v1 format and the artifact-bearing v2. Never panics
    /// on arbitrary input — every failure is a typed [`WireError`].
    pub fn decode_wire(buf: &[u8]) -> Result<(RouterDigest, usize), WireError> {
        if buf.len() < BUNDLE_HEADER {
            return Err(WireError::Truncated);
        }
        if buf[..4] != BUNDLE_MAGIC {
            let mut m = [0u8; 4];
            m.copy_from_slice(&buf[..4]);
            return Err(WireError::BadMagic(m));
        }
        let version = buf[4];
        if version != BUNDLE_VERSION_V1 && version != BUNDLE_VERSION_V2 {
            return Err(WireError::BadVersion(version));
        }
        let router_id = u64::from_le_bytes(buf[5..13].try_into().expect("8-byte slice"));
        let router_id = usize::try_from(router_id)
            .map_err(|_| WireError::Malformed("router id exceeds usize"))?;
        let epoch_id = u64::from_le_bytes(buf[13..21].try_into().expect("8-byte slice"));
        let rest = &buf[BUNDLE_HEADER..];
        let (aligned, used_a) = AlignedDigest::decode_wire(rest)?;
        let (unaligned, used_u) = UnalignedDigest::decode_wire(&rest[used_a..])?;
        let mut artifacts = Vec::new();
        let mut used = BUNDLE_HEADER + used_a + used_u;
        if version == BUNDLE_VERSION_V2 {
            let mut cursor = &rest[used_a + used_u..];
            let before = cursor.len();
            artifacts = artifact::decode_section(&mut cursor)?;
            used += before - cursor.len();
        }
        Ok((
            RouterDigest {
                router_id,
                epoch_id,
                aligned,
                unaligned,
                artifacts,
            },
            used,
        ))
    }
}

/// Borrowed, validated view of one [`RouterDigest`] wire frame.
///
/// [`RouterDigestView::parse`] applies exactly the checks of
/// [`RouterDigest::decode_wire`] — bundle header, both digest frames,
/// every embedded bitmap — but leaves the bitmap bytes on the wire
/// instead of copying them into owned buffers. The analysis centre fuses
/// digests straight out of the received frames through these views, so
/// its steady-state ingest path allocates nothing per digest.
#[derive(Clone, Copy, Debug)]
pub struct RouterDigestView<'a> {
    /// The shipping router's index.
    pub router_id: usize,
    /// The epoch this bundle summarises.
    pub epoch_id: u64,
    /// Aligned-case digest view.
    pub aligned: AlignedDigestView<'a>,
    /// Unaligned-case digest view.
    pub unaligned: UnalignedDigestView<'a>,
    /// Raw wire bytes of the artifact section (empty on v1 frames);
    /// validated during [`RouterDigestView::parse`], decoded on demand
    /// by [`RouterDigestView::artifacts`] so the view stays `Copy`.
    artifact_section: &'a [u8],
}

impl<'a> RouterDigestView<'a> {
    /// Validates the frame at the front of `buf`, returning the view and
    /// the bytes it covers. Never panics on arbitrary input — every
    /// failure is a typed [`WireError`].
    pub fn parse(buf: &'a [u8]) -> Result<(RouterDigestView<'a>, usize), WireError> {
        if buf.len() < BUNDLE_HEADER {
            return Err(WireError::Truncated);
        }
        if buf[..4] != BUNDLE_MAGIC {
            let mut m = [0u8; 4];
            m.copy_from_slice(&buf[..4]);
            return Err(WireError::BadMagic(m));
        }
        let version = buf[4];
        if version != BUNDLE_VERSION_V1 && version != BUNDLE_VERSION_V2 {
            return Err(WireError::BadVersion(version));
        }
        let router_id = u64::from_le_bytes(buf[5..13].try_into().expect("8-byte slice"));
        let router_id = usize::try_from(router_id)
            .map_err(|_| WireError::Malformed("router id exceeds usize"))?;
        let epoch_id = u64::from_le_bytes(buf[13..21].try_into().expect("8-byte slice"));
        let rest = &buf[BUNDLE_HEADER..];
        let (aligned, used_a) = AlignedDigestView::parse(rest)?;
        let (unaligned, used_u) = UnalignedDigestView::parse(&rest[used_a..])?;
        let mut artifact_section: &[u8] = &[];
        let mut used = BUNDLE_HEADER + used_a + used_u;
        if version == BUNDLE_VERSION_V2 {
            let tail = &rest[used_a + used_u..];
            let mut cursor = tail;
            artifact::decode_section_views(&mut cursor)?;
            let consumed = tail.len() - cursor.len();
            artifact_section = &tail[..consumed];
            used += consumed;
        }
        Ok((
            RouterDigestView {
                router_id,
                epoch_id,
                aligned,
                unaligned,
                artifact_section,
            },
            used,
        ))
    }

    /// Total encoded digest bytes (both cases), as counted by
    /// [`RouterDigest::encoded_len`].
    pub fn encoded_len(&self) -> usize {
        self.aligned.bitmap.encoded_len() + self.unaligned.encoded_len()
    }

    /// Wire bytes of the sidecar artifact section (0 on v1 frames).
    pub fn artifact_bytes(&self) -> usize {
        self.artifact_section.len()
    }

    /// Raw traffic bytes summarised.
    pub fn raw_bytes(&self) -> u64 {
        self.aligned.raw_bytes
    }

    /// Zero-copy `(kind, payload)` views of the sidecar artifacts
    /// (empty on v1 frames). The section was validated by `parse`, so
    /// this re-decode cannot fail.
    pub fn artifacts(&self) -> Vec<(u32, &'a [u8])> {
        if self.artifact_section.is_empty() {
            return Vec::new();
        }
        let mut cursor = self.artifact_section;
        artifact::decode_section_views(&mut cursor).expect("section validated at parse")
    }

    /// The first `DCSS` sketch artifact payload, if any.
    pub fn sketch_payload(&self) -> Option<&'a [u8]> {
        self.artifacts()
            .into_iter()
            .find(|&(kind, _)| kind == dcs_collect::ARTIFACT_KIND_SKETCH)
            .map(|(_, payload)| payload)
    }

    /// Copies the view into an owned [`RouterDigest`].
    pub fn to_owned(&self) -> RouterDigest {
        RouterDigest {
            router_id: self.router_id,
            epoch_id: self.epoch_id,
            aligned: self.aligned.to_owned(),
            unaligned: self.unaligned.to_owned(),
            artifacts: self
                .artifacts()
                .into_iter()
                .map(|(kind, payload)| Artifact {
                    kind,
                    payload: payload.to_vec(),
                })
                .collect(),
        }
    }
}

/// Bounded resend buffer: the chunk frames of one shipped epoch, kept
/// until the next epoch closes so the analysis centre's retransmit
/// requests (and post-restart recovery) can be served. Acked chunks are
/// pruned to bound memory further.
#[derive(Debug)]
struct ResendBuffer {
    epoch_id: u64,
    chunks: Vec<Option<Vec<u8>>>,
}

/// A monitoring point running both streaming modules over one router's
/// traffic.
#[derive(Debug)]
pub struct MonitoringPoint {
    router_id: usize,
    epoch: u64,
    aligned: AlignedCollector,
    unaligned: UnalignedCollector,
    sketch: Option<SketchCollector>,
    resend: Option<ResendBuffer>,
}

impl MonitoringPoint {
    /// Creates the monitoring point for `router_id`, salting the
    /// unaligned collector's offsets and flow split with the router id.
    pub fn new(router_id: usize, cfg: &MonitorConfig) -> Self {
        let mut ucfg = cfg.unaligned.clone();
        ucfg.router_seed = ucfg
            .router_seed
            .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(router_id as u64 + 1));
        let sketch = cfg
            .sketch
            .enabled()
            .then(|| SketchCollector::new(&cfg.sketch, cfg.aligned.seed));
        MonitoringPoint {
            router_id,
            epoch: 0,
            aligned: AlignedCollector::new(cfg.aligned.clone()),
            unaligned: UnalignedCollector::new(ucfg),
            sketch,
            resend: None,
        }
    }

    /// Epochs this point has finished (= the next bundle's epoch id).
    pub fn epochs_finished(&self) -> u64 {
        self.epoch
    }

    /// The router this point monitors.
    pub fn router_id(&self) -> usize {
        self.router_id
    }

    /// Feeds one packet through both streaming modules (and the sidecar
    /// sketch when enabled).
    pub fn observe(&mut self, pkt: &Packet) {
        if let Some(s) = self.sketch.as_mut() {
            s.observe(pkt, &self.aligned);
        }
        self.aligned.observe(pkt);
        self.unaligned.observe(pkt);
    }

    /// Feeds a whole epoch of packets.
    pub fn observe_all<'a>(&mut self, pkts: impl IntoIterator<Item = &'a Packet>) {
        for p in pkts {
            self.observe(p);
        }
    }

    /// Read access to the aligned collector (diagnostics).
    pub fn aligned(&self) -> &AlignedCollector {
        &self.aligned
    }

    /// Read access to the unaligned collector (diagnostics).
    pub fn unaligned(&self) -> &UnalignedCollector {
        &self.unaligned
    }

    /// Closes the epoch and ships the digest bundle (with the sketch
    /// artifact attached when a sketch is configured).
    pub fn finish_epoch(&mut self) -> RouterDigest {
        let epoch_id = self.epoch;
        self.epoch += 1;
        let artifacts = match self.sketch.as_mut() {
            Some(s) => vec![Artifact::sketch(s.finish_epoch())],
            None => Vec::new(),
        };
        RouterDigest {
            router_id: self.router_id,
            epoch_id,
            aligned: self.aligned.finish_epoch(),
            unaligned: self.unaligned.finish_epoch(),
            artifacts,
        }
    }

    /// Closes the epoch and ships it as chunk frames (see
    /// [`crate::transport`]): the wire bundle split into CRC-trailed
    /// chunks of at most `max_payload` digest bytes each. The chunks are
    /// also retained in a bounded resend buffer — exactly one epoch deep,
    /// replacing the previous epoch's — so the analysis centre can
    /// [`resend`](Self::resend) lost or corrupted chunks until the next
    /// epoch closes.
    pub fn finish_epoch_chunks(&mut self, max_payload: usize) -> Result<Vec<Vec<u8>>, WireError> {
        let digest = self.finish_epoch();
        let wire = digest.encode_wire()?;
        let chunks = crate::transport::chunk_bundle(
            self.router_id as u64,
            digest.epoch_id,
            &wire,
            max_payload,
        );
        self.resend = Some(ResendBuffer {
            epoch_id: digest.epoch_id,
            chunks: chunks.iter().cloned().map(Some).collect(),
        });
        Ok(chunks)
    }

    /// Serves a retransmit request from the resend buffer: the still-held
    /// chunk frames of `epoch_id` selected by `missing`. Empty when the
    /// buffer holds a different epoch (the request outlived the buffer's
    /// one-epoch retention) or the requested chunks were pruned by
    /// [`ack`](Self::ack).
    pub fn resend(&self, epoch_id: u64, missing: &crate::session::Missing) -> Vec<Vec<u8>> {
        let Some(buf) = self.resend.as_ref().filter(|b| b.epoch_id == epoch_id) else {
            return Vec::new();
        };
        match missing {
            crate::session::Missing::All => buf.chunks.iter().flatten().cloned().collect(),
            crate::session::Missing::Seqs(seqs) => seqs
                .iter()
                .filter_map(|&s| buf.chunks.get(s as usize).and_then(Clone::clone))
                .collect(),
        }
    }

    /// Applies a cumulative ack from the collector: every chunk of
    /// `epoch_id` below `cumulative_ack` is pruned from the resend
    /// buffer, releasing its memory.
    pub fn ack(&mut self, epoch_id: u64, cumulative_ack: u32) {
        if let Some(buf) = self.resend.as_mut().filter(|b| b.epoch_id == epoch_id) {
            for c in buf.chunks.iter_mut().take(cumulative_ack as usize) {
                *c = None;
            }
        }
    }

    /// Chunk frames still held in the resend buffer (diagnostics; bounds
    /// the buffer's memory in tests).
    pub fn resend_buffered(&self) -> usize {
        self.resend
            .as_ref()
            .map_or(0, |b| b.chunks.iter().flatten().count())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcs_traffic::{gen, BackgroundConfig, SizeMix};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn monitoring_point_round() {
        let mut r = StdRng::seed_from_u64(1);
        let cfg = MonitorConfig::small(7, 1 << 14, 8);
        let mut mp = MonitoringPoint::new(3, &cfg);
        let pkts = gen::generate_epoch(
            &mut r,
            &BackgroundConfig {
                packets: 500,
                flows: 100,
                zipf_exponent: 1.0,
                size_mix: SizeMix::constant(536),
            },
        );
        mp.observe_all(&pkts);
        let d = mp.finish_epoch();
        assert_eq!(d.router_id, 3);
        assert_eq!(d.epoch_id, 0);
        assert_eq!(d.aligned.packets_seen, 500);
        assert_eq!(d.unaligned.packets_sampled, 500);
        assert!(d.raw_bytes() > 0);
        assert!(d.encoded_len() > 0);
        // The next epoch's bundle carries the next id.
        assert_eq!(mp.epochs_finished(), 1);
        assert_eq!(mp.finish_epoch().epoch_id, 1);
    }

    #[test]
    fn bundle_wire_roundtrip() {
        let mut r = StdRng::seed_from_u64(2);
        let cfg = MonitorConfig::small(7, 1 << 12, 4);
        let mut mp = MonitoringPoint::new(9, &cfg);
        let pkts = gen::generate_epoch(
            &mut r,
            &BackgroundConfig {
                packets: 300,
                flows: 60,
                zipf_exponent: 1.0,
                size_mix: SizeMix::constant(536),
            },
        );
        mp.observe_all(&pkts);
        mp.finish_epoch(); // burn epoch 0
        mp.observe_all(&pkts);
        let d = mp.finish_epoch();
        let wire = d.encode_wire().expect("bundle fits the wire format");
        let (back, used) = RouterDigest::decode_wire(&wire).expect("roundtrip");
        assert_eq!(used, wire.len());
        assert_eq!(back.router_id, 9);
        assert_eq!(back.epoch_id, 1);
        assert_eq!(back.aligned.bitmap, d.aligned.bitmap);
        assert_eq!(back.unaligned, d.unaligned);
    }

    #[test]
    fn bundle_wire_rejects_corruption_without_panicking() {
        let cfg = MonitorConfig::small(7, 1 << 10, 2);
        let mut mp = MonitoringPoint::new(1, &cfg);
        let wire = mp
            .finish_epoch()
            .encode_wire()
            .expect("bundle fits the wire format");
        for cut in 0..wire.len() {
            assert!(
                RouterDigest::decode_wire(&wire[..cut]).is_err(),
                "strict prefix of {cut} bytes decoded"
            );
        }
        let mut bad = wire.to_vec();
        bad[0] = b'X';
        assert!(matches!(
            RouterDigest::decode_wire(&bad),
            Err(dcs_collect::WireError::BadMagic(_))
        ));
        let mut bad = wire.to_vec();
        bad[4] = 9;
        assert!(matches!(
            RouterDigest::decode_wire(&bad),
            Err(dcs_collect::WireError::BadVersion(9))
        ));
    }

    #[test]
    fn bundle_view_matches_owned_decode() {
        let mut r = StdRng::seed_from_u64(4);
        let cfg = MonitorConfig::small(7, 1 << 12, 4);
        let mut mp = MonitoringPoint::new(11, &cfg);
        let pkts = gen::generate_epoch(
            &mut r,
            &BackgroundConfig {
                packets: 300,
                flows: 60,
                zipf_exponent: 1.0,
                size_mix: SizeMix::constant(536),
            },
        );
        mp.observe_all(&pkts);
        let d = mp.finish_epoch();
        let wire = d.encode_wire().expect("bundle fits the wire format");
        let (owned, used_owned) = RouterDigest::decode_wire(&wire).unwrap();
        let (view, used_view) = RouterDigestView::parse(&wire).unwrap();
        assert_eq!(used_view, used_owned);
        assert_eq!(view.router_id, owned.router_id);
        assert_eq!(view.epoch_id, owned.epoch_id);
        assert_eq!(view.encoded_len(), owned.encoded_len());
        assert_eq!(view.raw_bytes(), owned.raw_bytes());
        let back = view.to_owned();
        assert_eq!(back.aligned, owned.aligned);
        assert_eq!(back.unaligned, owned.unaligned);
        // The view rejects every strict prefix, like the owned decoder.
        for cut in 0..wire.len() {
            assert!(
                RouterDigestView::parse(&wire[..cut]).is_err(),
                "strict prefix of {cut} bytes parsed"
            );
        }
    }

    #[test]
    fn resend_buffer_serves_one_epoch_and_prunes_on_ack() {
        use crate::session::Missing;

        let cfg = MonitorConfig::small(7, 1 << 12, 4);
        let mut mp = MonitoringPoint::new(6, &cfg);
        let mut r = StdRng::seed_from_u64(8);
        let pkts = gen::generate_epoch(
            &mut r,
            &BackgroundConfig {
                packets: 300,
                flows: 60,
                zipf_exponent: 1.0,
                size_mix: SizeMix::constant(536),
            },
        );
        mp.observe_all(&pkts);
        let chunks = mp.finish_epoch_chunks(256).expect("bundle fits the wire");
        assert!(chunks.len() > 1, "bundle should need several chunks");
        assert_eq!(mp.resend_buffered(), chunks.len());

        // Reassembling the resent chunks reproduces the original wire
        // bundle exactly.
        let all = mp.resend(0, &Missing::All);
        assert_eq!(all, chunks);
        let some = mp.resend(0, &Missing::Seqs(vec![1, 3]));
        assert_eq!(some, vec![chunks[1].clone(), chunks[3].clone()]);
        // Wrong epoch: nothing.
        assert!(mp.resend(9, &Missing::All).is_empty());

        // Acks prune; pruned chunks are no longer resendable.
        mp.ack(0, 2);
        assert_eq!(mp.resend_buffered(), chunks.len() - 2);
        assert_eq!(
            mp.resend(0, &Missing::Seqs(vec![0, 1, 2])),
            vec![chunks[2].clone()]
        );

        // The next epoch evicts the buffer entirely (one epoch deep).
        mp.observe_all(&pkts);
        let next = mp.finish_epoch_chunks(256).expect("bundle fits the wire");
        assert!(mp.resend(0, &Missing::All).is_empty());
        assert_eq!(mp.resend(1, &Missing::All), next);
    }

    #[test]
    fn sketch_artifact_rides_the_bundle_and_survives_the_wire() {
        let mut r = StdRng::seed_from_u64(11);
        let cfg = MonitorConfig::small(7, 1 << 12, 4).with_sketch(SketchSpec::heavy_content(16));
        let mut mp = MonitoringPoint::new(2, &cfg);
        let pkts = gen::generate_epoch(
            &mut r,
            &BackgroundConfig {
                packets: 400,
                flows: 80,
                zipf_exponent: 1.0,
                size_mix: SizeMix::constant(536),
            },
        );
        mp.observe_all(&pkts);
        let d = mp.finish_epoch();
        assert_eq!(d.artifacts.len(), 1);
        let payload = d.sketch_payload().expect("sketch artifact present");
        let decoded = dcs_sketch::decode_sketch(payload).expect("valid DCSS payload");
        match decoded {
            dcs_sketch::SketchWire::SpaceSaving { domain, sketch } => {
                assert_eq!(domain, dcs_sketch::SketchDomain::ContentIndex.to_u8());
                assert_eq!(sketch.total(), 400, "every payload packet counted");
            }
            other => panic!("wrong sketch kind: {other:?}"),
        }

        // v2 wire round trip: owned and view decoders agree, prefixes die.
        let wire = d.encode_wire().expect("encodes");
        assert_eq!(wire[4], 2, "artifact-bearing bundles are v2");
        let (back, used) = RouterDigest::decode_wire(&wire).expect("decodes");
        assert_eq!(used, wire.len());
        assert_eq!(back.artifacts, d.artifacts);
        let (view, used_v) = RouterDigestView::parse(&wire).expect("parses");
        assert_eq!(used_v, wire.len());
        assert_eq!(view.sketch_payload(), d.sketch_payload());
        assert_eq!(view.artifact_bytes(), d.artifact_bytes());
        assert_eq!(view.to_owned().artifacts, d.artifacts);
        for cut in 0..wire.len() {
            assert!(
                RouterDigest::decode_wire(&wire[..cut]).is_err(),
                "strict v2 prefix of {cut} bytes decoded"
            );
            assert!(
                RouterDigestView::parse(&wire[..cut]).is_err(),
                "strict v2 prefix of {cut} bytes parsed"
            );
        }
    }

    #[test]
    fn sketchless_bundles_stay_byte_identical_to_v1() {
        let mut r = StdRng::seed_from_u64(12);
        let pkts = gen::generate_epoch(
            &mut r,
            &BackgroundConfig {
                packets: 200,
                flows: 40,
                zipf_exponent: 1.0,
                size_mix: SizeMix::constant(536),
            },
        );
        let cfg = MonitorConfig::small(7, 1 << 12, 4);
        let mut plain = MonitoringPoint::new(2, &cfg);
        plain.observe_all(&pkts);
        let wire = plain.finish_epoch().encode_wire().expect("encodes");
        assert_eq!(wire[4], 1, "artifact-free bundles stay on v1");

        // A hand-built v1 frame of the same digests matches byte for byte.
        let (owned, _) = RouterDigest::decode_wire(&wire).expect("decodes");
        assert!(owned.artifacts.is_empty());
        assert_eq!(owned.encode_wire().expect("re-encodes"), wire);
    }

    #[test]
    fn sketch_finds_the_planted_heavy_column() {
        use dcs_traffic::{ContentObject, Planting};
        let mut r = StdRng::seed_from_u64(13);
        let cfg = MonitorConfig::small(7, 1 << 14, 4).with_sketch(SketchSpec::heavy_content(8));
        let mut mp = MonitoringPoint::new(0, &cfg);
        let mut pkts = gen::generate_epoch(
            &mut r,
            &BackgroundConfig {
                packets: 500,
                flows: 100,
                zipf_exponent: 1.0,
                size_mix: SizeMix::constant(536),
            },
        );
        // Plant 60 instances of a one-packet object: its single payload
        // hashes to one column, hit 60 times — a clear heavy column.
        let object = ContentObject::random_with_packets(&mut r, 1, 536);
        let planting = Planting::aligned(object.clone(), 536);
        for _ in 0..60 {
            planting.plant_into(&mut r, &mut pkts);
        }
        let first_payload = object.packetize(&[], 536)[0].clone();
        let probe = dcs_traffic::Packet::new(dcs_traffic::FlowLabel::random(&mut r), first_payload);
        let expect_idx = mp.aligned().index_of(&probe).expect("payload packet");
        mp.observe_all(&pkts);
        let d = mp.finish_epoch();
        let decoded = dcs_sketch::decode_sketch(d.sketch_payload().unwrap()).unwrap();
        let dcs_sketch::SketchWire::SpaceSaving { sketch, .. } = decoded else {
            panic!("wrong sketch kind");
        };
        let top: Vec<u64> = sketch.top_k(3).into_iter().map(|h| h.key).collect();
        assert!(
            top.contains(&(expect_idx as u64)),
            "planted column {expect_idx} missing from top-3 {top:?}"
        );
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(48))]

        /// The bundle decoders never panic on 64 KiB of byte soup, with
        /// the DCSR magic (and half the time the v2 version byte)
        /// stamped so the artifact-section path is exercised too.
        #[test]
        fn bundle_decoders_never_panic_on_64k_soup(
            raw in proptest::collection::vec(proptest::prelude::any::<u8>(), 0..(64 * 1024)),
            stamp in proptest::prelude::any::<bool>(),
        ) {
            let mut soup = raw;
            if stamp && soup.len() >= 5 {
                soup[..4].copy_from_slice(&BUNDLE_MAGIC);
                soup[4] = 1 + (soup[4] % 2);
            }
            let owned = RouterDigest::decode_wire(&soup);
            let view = RouterDigestView::parse(&soup);
            proptest::prop_assert_eq!(owned.is_ok(), view.is_ok());
        }
    }

    #[test]
    fn distinct_routers_get_distinct_offsets() {
        let cfg = MonitorConfig::small(7, 1 << 10, 4);
        let a = MonitoringPoint::new(0, &cfg);
        let b = MonitoringPoint::new(1, &cfg);
        assert_ne!(
            a.unaligned().offsets(),
            b.unaligned().offsets(),
            "routers must sample different offsets"
        );
    }
}
