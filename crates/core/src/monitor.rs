//! One monitoring point: both collectors wired to a router's traffic.

use dcs_collect::{
    AlignedCollector, AlignedConfig, AlignedDigest, UnalignedCollector, UnalignedConfig,
    UnalignedDigest,
};
use dcs_traffic::Packet;

/// Configuration of a monitoring point.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct MonitorConfig {
    /// Aligned-case collector settings (shared hash seed across routers).
    pub aligned: AlignedConfig,
    /// Unaligned-case collector settings (shared content-hash seed; the
    /// router seed is overridden per router).
    pub unaligned: UnalignedConfig,
}

impl MonitorConfig {
    /// A deployment-wide configuration scaled for tests/examples: both
    /// collectors share the epoch seed; each router gets distinct offsets.
    pub fn small(epoch_seed: u64, aligned_bits: usize, groups: usize) -> Self {
        MonitorConfig {
            aligned: AlignedConfig::small(aligned_bits, epoch_seed),
            unaligned: UnalignedConfig::small(groups, epoch_seed, 0),
        }
    }
}

/// The digest bundle one router ships per epoch.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct RouterDigest {
    /// The shipping router's index.
    pub router_id: usize,
    /// Aligned-case digest.
    pub aligned: AlignedDigest,
    /// Unaligned-case digest.
    pub unaligned: UnalignedDigest,
}

impl RouterDigest {
    /// Total encoded digest bytes (both cases).
    pub fn encoded_len(&self) -> usize {
        self.aligned.bitmap.encoded_len() + self.unaligned.encoded_len()
    }

    /// Raw traffic bytes summarised.
    pub fn raw_bytes(&self) -> u64 {
        self.aligned.raw_bytes
    }
}

/// A monitoring point running both streaming modules over one router's
/// traffic.
#[derive(Debug)]
pub struct MonitoringPoint {
    router_id: usize,
    aligned: AlignedCollector,
    unaligned: UnalignedCollector,
}

impl MonitoringPoint {
    /// Creates the monitoring point for `router_id`, salting the
    /// unaligned collector's offsets and flow split with the router id.
    pub fn new(router_id: usize, cfg: &MonitorConfig) -> Self {
        let mut ucfg = cfg.unaligned.clone();
        ucfg.router_seed = ucfg
            .router_seed
            .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(router_id as u64 + 1));
        MonitoringPoint {
            router_id,
            aligned: AlignedCollector::new(cfg.aligned.clone()),
            unaligned: UnalignedCollector::new(ucfg),
        }
    }

    /// The router this point monitors.
    pub fn router_id(&self) -> usize {
        self.router_id
    }

    /// Feeds one packet through both streaming modules.
    pub fn observe(&mut self, pkt: &Packet) {
        self.aligned.observe(pkt);
        self.unaligned.observe(pkt);
    }

    /// Feeds a whole epoch of packets.
    pub fn observe_all<'a>(&mut self, pkts: impl IntoIterator<Item = &'a Packet>) {
        for p in pkts {
            self.observe(p);
        }
    }

    /// Read access to the aligned collector (diagnostics).
    pub fn aligned(&self) -> &AlignedCollector {
        &self.aligned
    }

    /// Read access to the unaligned collector (diagnostics).
    pub fn unaligned(&self) -> &UnalignedCollector {
        &self.unaligned
    }

    /// Closes the epoch and ships the digest bundle.
    pub fn finish_epoch(&mut self) -> RouterDigest {
        RouterDigest {
            router_id: self.router_id,
            aligned: self.aligned.finish_epoch(),
            unaligned: self.unaligned.finish_epoch(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcs_traffic::{gen, BackgroundConfig, SizeMix};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn monitoring_point_round() {
        let mut r = StdRng::seed_from_u64(1);
        let cfg = MonitorConfig::small(7, 1 << 14, 8);
        let mut mp = MonitoringPoint::new(3, &cfg);
        let pkts = gen::generate_epoch(
            &mut r,
            &BackgroundConfig {
                packets: 500,
                flows: 100,
                zipf_exponent: 1.0,
                size_mix: SizeMix::constant(536),
            },
        );
        mp.observe_all(&pkts);
        let d = mp.finish_epoch();
        assert_eq!(d.router_id, 3);
        assert_eq!(d.aligned.packets_seen, 500);
        assert_eq!(d.unaligned.packets_sampled, 500);
        assert!(d.raw_bytes() > 0);
        assert!(d.encoded_len() > 0);
    }

    #[test]
    fn distinct_routers_get_distinct_offsets() {
        let cfg = MonitorConfig::small(7, 1 << 10, 4);
        let a = MonitoringPoint::new(0, &cfg);
        let b = MonitoringPoint::new(1, &cfg);
        assert_ne!(
            a.unaligned().offsets(),
            b.unaligned().offsets(),
            "routers must sample different offsets"
        );
    }
}
