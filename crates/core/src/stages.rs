//! Named pipeline stages and the instrumented stage recorder.
//!
//! Both detection pipelines of the [`AnalysisCenter`] run as a fixed
//! sequence of named [`Stage`]s driven through one [`StageRecorder`]:
//! the aligned pipeline as `fuse → sketch_fuse → screen → core_find →
//! sweep → terminate`, the unaligned pipeline as `stack_rows → prescreen →
//! graph_build → er_test → peel`. Every stage span lands in three metric
//! families of the centre's [`MetricsRegistry`]:
//!
//! * gauge `epoch_stage_ns{pipeline,stage}` — the last epoch's span (the
//!   view behind [`EpochTimings`](crate::report::EpochTimings));
//! * histogram `stage_ns{pipeline,stage}` — every span ever recorded;
//! * counter `stage_runs_total{pipeline,stage}` — how often the stage ran.
//!
//! Spans are floored at 1 ns so a stage that ran is never
//! indistinguishable from one that never did, even when the measured
//! body is below clock resolution (e.g. the peel stage of a quiet epoch).
//!
//! [`AnalysisCenter`]: crate::center::AnalysisCenter

use dcs_obs::MetricsRegistry;
use std::time::Instant;

/// One named stage of a detection pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Aligned: fuse per-router bitmaps into the m×n column matrix,
    /// accumulating column weights.
    Fuse,
    /// Aligned: merge the epoch's sidecar heavy-hitter sketches and map
    /// top-k content-index keys to seed columns for the core search.
    /// Runs (and records a span) every epoch, even with no sketches.
    SketchFuse,
    /// Aligned: rank columns and materialise the n′ heaviest.
    Screen,
    /// Aligned: greedy product search for the core, including the
    /// termination-procedure read of the weight curve.
    CoreFind,
    /// Aligned: expansion sweep of the core row vector across all columns.
    Sweep,
    /// Aligned: natural-occurrence verdict and report assembly.
    Terminate,
    /// Unaligned: stack per-router arrays vertically and map group
    /// ownership.
    StackRows,
    /// Unaligned: conservative pair screen — per-row weight classes and
    /// band signatures that discharge row pairs provably unable to pass
    /// the λ test, leaving the graph bit-identical.
    Prescreen,
    /// Unaligned: pairwise λ-similarity graph construction.
    GraphBuild,
    /// Unaligned: Erdős–Rényi giant-component statistical test.
    ErTest,
    /// Unaligned: detection-graph core peeling (trivial span when no
    /// alarm was raised).
    Peel,
}

impl Stage {
    /// The aligned pipeline's stages, in execution order.
    pub const ALIGNED: [Stage; 6] = [
        Stage::Fuse,
        Stage::SketchFuse,
        Stage::Screen,
        Stage::CoreFind,
        Stage::Sweep,
        Stage::Terminate,
    ];

    /// The unaligned pipeline's stages, in execution order.
    pub const UNALIGNED: [Stage; 5] = [
        Stage::StackRows,
        Stage::Prescreen,
        Stage::GraphBuild,
        Stage::ErTest,
        Stage::Peel,
    ];

    /// The `stage` label value.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Fuse => "fuse",
            Stage::SketchFuse => "sketch_fuse",
            Stage::Screen => "screen",
            Stage::CoreFind => "core_find",
            Stage::Sweep => "sweep",
            Stage::Terminate => "terminate",
            Stage::StackRows => "stack_rows",
            Stage::Prescreen => "prescreen",
            Stage::GraphBuild => "graph_build",
            Stage::ErTest => "er_test",
            Stage::Peel => "peel",
        }
    }

    /// The `pipeline` label value.
    pub fn pipeline(self) -> &'static str {
        match self {
            Stage::Fuse
            | Stage::SketchFuse
            | Stage::Screen
            | Stage::CoreFind
            | Stage::Sweep
            | Stage::Terminate => "aligned",
            Stage::StackRows
            | Stage::Prescreen
            | Stage::GraphBuild
            | Stage::ErTest
            | Stage::Peel => "unaligned",
        }
    }

    /// Canonical gauge key of this stage's last-epoch span —
    /// `epoch_stage_ns{pipeline=…,stage=…}`.
    pub fn gauge_key(self) -> String {
        dcs_obs::metric_key(
            "epoch_stage_ns",
            &[("pipeline", self.pipeline()), ("stage", self.name())],
        )
    }
}

/// Drives pipeline stages over one registry, recording each span into
/// the three conventional metric families (see the module docs).
#[derive(Debug)]
pub struct StageRecorder<'a> {
    registry: &'a MetricsRegistry,
}

impl<'a> StageRecorder<'a> {
    /// A recorder reporting into `registry`.
    pub fn new(registry: &'a MetricsRegistry) -> Self {
        StageRecorder { registry }
    }

    /// Runs `body` as one `stage` span, returning its output and the
    /// recorded nanoseconds (floored at 1).
    pub fn run<T>(&self, stage: Stage, body: impl FnOnce() -> T) -> (T, u64) {
        let t0 = Instant::now();
        let out = body();
        let ns = self.record(stage, t0.elapsed().as_nanos() as u64);
        (out, ns)
    }

    /// Records an externally measured `stage` span of `ns` nanoseconds
    /// (floored at 1 — see the module docs), returning the recorded
    /// value. Used for stages whose bodies are timed inside a lower
    /// layer (the aligned search returns its own
    /// [`SearchTimings`](dcs_aligned::SearchTimings)).
    pub fn record(&self, stage: Stage, ns: u64) -> u64 {
        let ns = ns.max(1);
        let labels = [("pipeline", stage.pipeline()), ("stage", stage.name())];
        self.registry.gauge("epoch_stage_ns", &labels).set(ns);
        self.registry.histogram("stage_ns", &labels).observe(ns);
        self.registry.counter("stage_runs_total", &labels).inc();
        ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_labels_cover_both_pipelines() {
        for s in Stage::ALIGNED {
            assert_eq!(s.pipeline(), "aligned");
        }
        for s in Stage::UNALIGNED {
            assert_eq!(s.pipeline(), "unaligned");
        }
        let mut names: Vec<&str> = Stage::ALIGNED
            .iter()
            .chain(Stage::UNALIGNED.iter())
            .map(|s| s.name())
            .collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 11, "stage names must be distinct");
    }

    #[test]
    fn recorder_feeds_all_three_families() {
        let reg = MetricsRegistry::new();
        let rec = StageRecorder::new(&reg);
        let (out, ns) = rec.run(Stage::Fuse, || 7);
        assert_eq!(out, 7);
        assert!(ns >= 1);
        let zero_floored = rec.record(Stage::Peel, 0);
        assert_eq!(zero_floored, 1, "zero spans floor to 1 ns");
        let snap = reg.snapshot();
        assert_eq!(snap.gauge(&Stage::Fuse.gauge_key()), Some(ns));
        assert_eq!(
            snap.gauge("epoch_stage_ns{pipeline=unaligned,stage=peel}"),
            Some(1)
        );
        assert_eq!(
            snap.counter("stage_runs_total{pipeline=aligned,stage=fuse}"),
            Some(1)
        );
        let h = snap
            .histogram("stage_ns{pipeline=aligned,stage=fuse}")
            .expect("histogram registered");
        assert_eq!(h.count, 1);
        assert_eq!(h.sum, ns);
    }
}
