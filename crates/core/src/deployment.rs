//! Whole-deployment orchestration: the multi-epoch loop the examples
//! hand-roll, packaged for downstream users.
//!
//! A [`Deployment`] owns one [`MonitoringPoint`] per router, the
//! [`AnalysisCenter`], an [`EpochSampler`] (paper §IV-D possibility 5) and
//! per-pipeline [`AlarmTracker`]s (§V-B.1's detection-across-epochs).
//! Feed it one epoch of per-router traffic at a time; it returns a
//! verdict whenever the sampler lets an epoch through.

use crate::capture::{GroupCapture, SignatureCapture};
use crate::center::{AnalysisCenter, AnalysisConfig};
use crate::epochs::{AlarmTracker, EpochSampler};
use crate::monitor::{MonitorConfig, MonitoringPoint};
use crate::report::EpochReport;
use dcs_traffic::Packet;

/// A running DCS deployment.
#[derive(Debug)]
pub struct Deployment {
    monitor_cfg: MonitorConfig,
    points: Vec<MonitoringPoint>,
    center: AnalysisCenter,
    sampler: EpochSampler,
    aligned_tracker: AlarmTracker,
    unaligned_tracker: AlarmTracker,
    epoch: usize,
}

/// The outcome of one analysed epoch.
#[derive(Debug, Clone)]
pub struct DeploymentVerdict {
    /// Epoch index (counting every epoch, analysed or not).
    pub epoch: usize,
    /// The full per-epoch report.
    pub report: EpochReport,
    /// Smoothed (windowed) aligned alarm.
    pub stable_aligned: bool,
    /// Smoothed (windowed) unaligned alarm.
    pub stable_unaligned: bool,
}

impl Deployment {
    /// Creates a deployment of `routers` monitoring points. Analyses every
    /// epoch and fires alarms 1-of-1 by default; see
    /// [`Deployment::with_sampling`] and [`Deployment::with_alarm_window`].
    pub fn new(routers: usize, monitor_cfg: MonitorConfig, analysis_cfg: AnalysisConfig) -> Self {
        assert!(routers > 0, "a deployment needs at least one router");
        let points = (0..routers)
            .map(|r| MonitoringPoint::new(r, &monitor_cfg))
            .collect();
        Deployment {
            monitor_cfg,
            points,
            center: AnalysisCenter::new(analysis_cfg),
            sampler: EpochSampler::new(1),
            aligned_tracker: AlarmTracker::new(1, 1),
            unaligned_tracker: AlarmTracker::new(1, 1),
            epoch: 0,
        }
    }

    /// Analyse only one epoch in `every`.
    pub fn with_sampling(mut self, every: usize) -> Self {
        self.sampler = EpochSampler::new(every);
        self
    }

    /// Smooth both alarms over `min_alarms`-of-`window` analysed epochs.
    pub fn with_alarm_window(mut self, window: usize, min_alarms: usize) -> Self {
        self.aligned_tracker = AlarmTracker::new(window, min_alarms);
        self.unaligned_tracker = AlarmTracker::new(window, min_alarms);
        self
    }

    /// Number of monitoring points.
    pub fn routers(&self) -> usize {
        self.points.len()
    }

    /// Epochs processed so far.
    pub fn epochs_seen(&self) -> usize {
        self.epoch
    }

    /// Processes one epoch: `traffic[r]` is router r's packet stream.
    /// Returns `None` when the sampler skipped the epoch (collectors are
    /// still reset so epochs stay aligned), otherwise the verdict.
    ///
    /// # Panics
    /// Panics if `traffic.len() != routers()`.
    pub fn run_epoch(&mut self, traffic: &[Vec<Packet>]) -> Option<DeploymentVerdict> {
        assert_eq!(
            traffic.len(),
            self.points.len(),
            "one traffic stream per router required"
        );
        let epoch = self.epoch;
        self.epoch += 1;
        let analyse = self.sampler.tick();
        if !analyse {
            // Skipped epochs are not even collected (that is the point of
            // sampling: the collectors idle); reset state to stay aligned.
            return None;
        }
        let digests: Vec<_> = self
            .points
            .iter_mut()
            .zip(traffic)
            .map(|(point, pkts)| {
                point.observe_all(pkts);
                point.finish_epoch()
            })
            .collect();
        // The deployment collects from its own points, so the batch is
        // self-consistent and always forms a quorum.
        let report = self
            .center
            .analyze_epoch(&digests)
            .expect("self-collected digests always form a quorum");
        let stable_aligned = self.aligned_tracker.record(report.aligned.found);
        let stable_unaligned = self.unaligned_tracker.record(report.unaligned.alarm);
        Some(DeploymentVerdict {
            epoch,
            report,
            stable_aligned,
            stable_unaligned,
        })
    }

    /// Primes an aligned-case capture filter from a verdict's signature
    /// (valid while the deployment keeps its epoch hash seed).
    pub fn signature_capture(&self, verdict: &DeploymentVerdict) -> SignatureCapture {
        SignatureCapture::new(
            &self.monitor_cfg.aligned,
            &verdict.report.aligned.signature_indices,
        )
    }

    /// Primes a per-router unaligned capture filter from a verdict's
    /// suspected groups: global group ids are translated into router-local
    /// ids for `router`.
    pub fn group_capture(&self, verdict: &DeploymentVerdict, router: usize) -> GroupCapture {
        let groups = self.monitor_cfg.unaligned.groups;
        let local: Vec<usize> = verdict
            .report
            .unaligned
            .suspected_groups
            .iter()
            .filter(|&&g| g / groups == router)
            .map(|&g| g % groups)
            .collect();
        // Reconstruct the router's collector config (same derivation as
        // MonitoringPoint::new).
        let mut ucfg = self.monitor_cfg.unaligned.clone();
        ucfg.router_seed = ucfg
            .router_seed
            .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(router as u64 + 1));
        GroupCapture::new(&ucfg, &local)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcs_traffic::gen::{generate_epoch, BackgroundConfig, SizeMix};
    use dcs_traffic::{ContentObject, Planting};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const ROUTERS: usize = 24;

    fn traffic_epoch(rng: &mut StdRng, infected: usize, plant: &Planting) -> Vec<Vec<Packet>> {
        let bg = BackgroundConfig {
            packets: 700,
            flows: 180,
            zipf_exponent: 1.0,
            size_mix: SizeMix::constant(536),
        };
        (0..ROUTERS)
            .map(|r| {
                let mut t = generate_epoch(rng, &bg);
                if r < infected {
                    plant.plant_into(rng, &mut t);
                }
                t
            })
            .collect()
    }

    fn deployment() -> Deployment {
        let mcfg = MonitorConfig::small(21, 1 << 14, 4);
        let mut acfg = AnalysisConfig::for_groups(ROUTERS * 4);
        acfg.search.n_prime = 300;
        acfg.search.hopefuls = 200;
        Deployment::new(ROUTERS, mcfg, acfg)
    }

    #[test]
    fn multi_epoch_loop_with_sampling_and_smoothing() {
        let mut rng = StdRng::seed_from_u64(1);
        let object = ContentObject::random_with_packets(&mut rng, 30, 536);
        let plant = Planting::aligned(object, 536);
        let mut dep = deployment().with_sampling(2).with_alarm_window(2, 2);

        let mut verdicts = Vec::new();
        for _ in 0..6 {
            let traffic = traffic_epoch(&mut rng, 18, &plant);
            if let Some(v) = dep.run_epoch(&traffic) {
                verdicts.push(v);
            }
        }
        assert_eq!(dep.epochs_seen(), 6);
        assert_eq!(verdicts.len(), 3, "1-in-2 sampling analyses 3 of 6");
        assert!(verdicts.iter().all(|v| v.report.aligned.found));
        assert!(
            !verdicts[0].stable_aligned,
            "2-of-2 smoothing needs a second epoch"
        );
        assert!(verdicts[1].stable_aligned);
        assert!(verdicts[2].stable_aligned);
    }

    #[test]
    fn verdict_primes_working_signature_capture() {
        let mut rng = StdRng::seed_from_u64(2);
        let object = ContentObject::random_with_packets(&mut rng, 30, 536);
        let plant = Planting::aligned(object, 536);
        let mut dep = deployment();
        let traffic = traffic_epoch(&mut rng, 18, &plant);
        let v = dep.run_epoch(&traffic).expect("analysed");
        assert!(v.report.aligned.found);

        let filter = dep.signature_capture(&v);
        assert!(!filter.is_empty());
        // A fresh content instance from the next epoch must be captured.
        let instance = plant.instantiate(&mut rng);
        let captured = filter.capture(&instance);
        assert!(
            captured.len() * 10 >= instance.len() * 8,
            "captured only {}/{} content packets",
            captured.len(),
            instance.len()
        );
    }

    #[test]
    fn group_capture_translates_global_ids() {
        let dep = deployment();
        let verdict = DeploymentVerdict {
            epoch: 0,
            report: crate::report::EpochReport {
                routers: ROUTERS,
                raw_bytes: 0,
                digest_bytes: 0,
                aligned: crate::report::AlignedReport {
                    found: false,
                    routers: vec![],
                    content_packets: 0,
                    signature_indices: vec![],
                },
                unaligned: crate::report::UnalignedReport {
                    alarm: true,
                    largest_component: 50,
                    component_threshold: 10,
                    suspected_routers: vec![2],
                    // Global groups 8..12 belong to router 2 (4 per router).
                    suspected_groups: vec![9, 11],
                },
                ingest: Default::default(),
                sketch: Default::default(),
                timings: Default::default(),
                transport: Default::default(),
            },
            stable_aligned: false,
            stable_unaligned: true,
        };
        let filter = dep.group_capture(&verdict, 2);
        assert!((filter.expected_capture_fraction() - 0.5).abs() < 1e-12);
        let other = dep.group_capture(&verdict, 3);
        assert_eq!(other.expected_capture_fraction(), 0.0);
    }

    #[test]
    #[should_panic(expected = "one traffic stream per router")]
    fn mismatched_traffic_rejected() {
        let mut dep = deployment();
        dep.run_epoch(&[Vec::new()]);
    }
}
