//! Regional aggregation tier: fan-in between the monitoring points and
//! the analysis centre.
//!
//! A flat deployment — every router shipping its chunked digest bundle
//! straight to the centre — stops scaling at a few dozen routers: the
//! centre holds one retransmit session per router and its ingest work
//! grows with the *leaf* count. This module inserts regional
//! [`Aggregator`]s between the two:
//!
//! ```text
//!   leaf 1 ──┐
//!   leaf 2 ──┤ DCSC chunks   ┌────────────┐  one AggregateBundle
//!      …     ├──────────────►│ aggregator │─────────────────────┐
//!   leaf c ──┘   (hop 1)     └────────────┘   as DCSC chunks    │
//!                                                (hop 2)        ▼
//!   leaf c+1 ─┐              ┌────────────┐              ┌──────────┐
//!      …      ├─────────────►│ aggregator │─────────────►│  centre  │
//!   leaf 2c ──┘              └────────────┘              └──────────┘
//! ```
//!
//! An aggregator runs an ordinary [`EpochCollector`] over its children,
//! then **pre-fuses** what arrived: the accepted children's aligned
//! bitmaps are OR-fused into one bitmap with a per-child popcount
//! *weight sidecar* (the occupancy evidence a two-tier screen needs),
//! while the child DCSR frames themselves are embedded **verbatim** in
//! the [`AggregateBundle`]. Verbatim embedding is the detection-
//! equivalence guarantee: the centre parses exactly the bytes a flat
//! deployment would have shipped it, so the fused matrices — and
//! therefore every detection verdict — are byte-identical to flat
//! ingest by construction (see DESIGN.md §10).
//!
//! Children the aggregator could not deliver (timed out, checksum-dead,
//! unparseable) ride along as typed [`ChildExclusion`]s; the centre
//! wraps them in [`RouterFault::AtLevel`] so every leaf lost anywhere in
//! the tree surfaces in the final
//! [`IngestReport`](crate::ingest::IngestReport) with its fault kind and
//! level, and quorum stays a *leaf* count, never a bundle count.
//!
//! The bundle's wire format follows the DCSC/DCSR discipline: magic +
//! version header, every declared length checked against the remaining
//! buffer and a hard cap before allocation, CRC-32 trailer over the
//! whole frame. Bundles ship upstream as ordinary
//! [`chunk_bundle`](crate::transport::chunk_bundle) chunks.

use crate::ingest::RouterFault;
use crate::monitor::RouterDigestView;
use crate::report::TransportStats;
use crate::session::{
    ChunkDisposition, CollectedEpoch, CollectorConfig, EpochCollector, RetransmitRequest,
};
use dcs_bitmap::{Bitmap, WordSource};
use dcs_collect::{artifact, Artifact, MAX_ARTIFACT_PAYLOAD};
use dcs_hash::crc32::crc32;
use dcs_obs::MetricsRegistry;
use dcs_sketch::{decode_sketch, SketchWire};
use std::fmt;
use std::time::Instant;

/// Magic for aggregate bundle frames (`b"DCSG"`).
pub const AGGREGATE_MAGIC: [u8; 4] = *b"DCSG";

/// Pre-artifact aggregate bundle version.
pub const AGGREGATE_VERSION: u8 = 1;

/// Artifact-bearing aggregate bundles: v1 layout plus a sidecar
/// artifact section between the exclusions and the CRC trailer.
/// Emitted only when the section is non-empty, so artifact-free
/// bundles stay byte-identical to v1.
pub const AGGREGATE_VERSION_V2: u8 = 2;

/// Fixed header bytes: magic + version + aggregator id + epoch id +
/// level + total frame length.
pub const AGGREGATE_HEADER: usize = 4 + 1 + 8 + 8 + 1 + 4;

/// Hard cap on children per bundle (weights, embedded frames and
/// exclusions each): a hostile count cannot reserve more slots.
pub const MAX_AGGREGATE_CHILDREN: u32 = 4096;

/// Hard cap on the fused bitmap width in bits.
pub const MAX_FUSED_BITS: u32 = 1 << 27;

/// Hard cap on one embedded child frame's length.
pub const MAX_CHILD_FRAME: usize = 1 << 26;

/// Cap on an encoded fault's embedded string (wire-error text).
const MAX_FAULT_STRING: usize = 1024;

/// Cap on [`RouterFault::AtLevel`] nesting in the fault encoding.
const MAX_FAULT_DEPTH: usize = 4;

/// Errors from decoding aggregate bundle frames.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AggregateError {
    /// Buffer too short for the declared structure.
    Truncated,
    /// Unexpected magic bytes.
    BadMagic([u8; 4]),
    /// Unsupported bundle version.
    BadVersion(u8),
    /// The CRC-32 trailer disagrees with the frame bytes.
    ChecksumMismatch {
        /// Checksum carried in the trailer.
        declared: u32,
        /// Checksum of the bytes as received.
        computed: u32,
    },
    /// Structurally impossible field (count or length beyond its cap or
    /// the remaining buffer).
    Malformed(&'static str),
}

impl fmt::Display for AggregateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AggregateError::Truncated => write!(f, "aggregate bundle truncated"),
            AggregateError::BadMagic(m) => write!(f, "bad aggregate magic {m:02x?}"),
            AggregateError::BadVersion(v) => write!(f, "unsupported aggregate version {v}"),
            AggregateError::ChecksumMismatch { declared, computed } => write!(
                f,
                "aggregate checksum mismatch: trailer {declared:#010x}, computed {computed:#010x}"
            ),
            AggregateError::Malformed(what) => write!(f, "malformed aggregate bundle: {what}"),
        }
    }
}

impl std::error::Error for AggregateError {}

/// One fused child's aligned popcount — the weight sidecar entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChildWeight {
    /// The child router.
    pub router_id: u64,
    /// Number of 1's the child contributed to the OR-fused bitmap.
    pub weight: u32,
}

/// One child excluded at the aggregator, with the transport- or
/// wire-level reason. The centre wraps the fault in
/// [`RouterFault::AtLevel`] when it folds the bundle into the epoch's
/// ingest accounting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChildExclusion {
    /// The lost child router.
    pub router_id: u64,
    /// Why the aggregator could not deliver it.
    pub fault: RouterFault,
}

/// One aggregator's pre-fused epoch: embedded child DCSR frames
/// (verbatim), the OR-fused aligned bitmap with its per-child weight
/// sidecar, and the children lost below this level.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AggregateBundle {
    /// The shipping aggregator.
    pub aggregator_id: u64,
    /// The epoch this bundle covers.
    pub epoch_id: u64,
    /// Aggregation tier (first tier above the leaves = 1).
    pub level: u8,
    /// OR of the parseable children's aligned bitmaps. Width is the
    /// first parseable child's; children of another width are still
    /// forwarded but not fused (the centre's consensus vote decides).
    /// Empty when no child parsed.
    pub fused: Bitmap,
    /// Per fused child: its aligned popcount, in embed order.
    pub child_weights: Vec<ChildWeight>,
    /// The accepted children's DCSR wire frames, verbatim.
    pub frames: Vec<Vec<u8>>,
    /// Children this aggregator could not deliver.
    pub exclusions: Vec<ChildExclusion>,
    /// Sidecar artifacts at this tier — one merged `DCSS` sketch when
    /// any fused child shipped one (empty on pre-artifact bundles).
    pub artifacts: Vec<Artifact>,
}

impl AggregateBundle {
    /// Leaves this bundle accounts for: embedded frames plus exclusions.
    pub fn leaves(&self) -> usize {
        self.frames.len() + self.exclusions.len()
    }

    /// Builds a bundle from reassembled child frames (`(child router id,
    /// DCSR frame bytes)`) plus the children already excluded by
    /// transport. This is [`Aggregator::finalize`]'s core, exposed so
    /// tests and simulations can assemble bundles without driving a
    /// chunk session.
    ///
    /// Frames that fail [`RouterDigestView::parse`] become
    /// [`RouterFault::Wire`] exclusions and are **not** forwarded (they
    /// cannot parse at the centre either — dropping them here is the
    /// bandwidth the tier saves). A child frame that is itself a DCSG
    /// bundle (a lower-level aggregator) is flattened: its leaf frames,
    /// weights and fused bitmap merge into this bundle, and its
    /// exclusions are re-wrapped one level deeper in
    /// [`RouterFault::AtLevel`]. Parseable leaf frames are embedded
    /// verbatim; those matching the first child's aligned width are
    /// OR-fused into [`AggregateBundle::fused`] with a weight-sidecar
    /// entry each.
    pub fn assemble(
        aggregator_id: u64,
        epoch_id: u64,
        level: u8,
        child_frames: Vec<(u64, Vec<u8>)>,
        mut exclusions: Vec<ChildExclusion>,
    ) -> AggregateBundle {
        let mut fused = Bitmap::new(0);
        let mut child_weights: Vec<ChildWeight> = Vec::new();
        let mut frames = Vec::with_capacity(child_frames.len());
        let mut sketch_payloads: Vec<Vec<u8>> = Vec::new();
        for (router_id, bytes) in child_frames {
            // A child that is itself an aggregator ships a nested DCSG
            // bundle; flatten it so the upstream tier (and ultimately the
            // centre) keeps accounting in *leaves*. The nested bundle's
            // leaf frames are spliced in verbatim, its pre-fused bitmap
            // is OR-merged, its leaf weights carry over, and each of its
            // exclusions is re-wrapped in [`RouterFault::AtLevel`] so
            // the fault's full path through the tree survives the hop.
            if bytes.len() >= 4 && bytes[..4] == AGGREGATE_MAGIC {
                match AggregateBundle::decode_wire(&bytes) {
                    Err(e) => exclusions.push(ChildExclusion {
                        router_id,
                        fault: RouterFault::Wire(e.to_string()),
                    }),
                    Ok((nested, _)) => {
                        if let Some(p) = nested.sketch_payload() {
                            sketch_payloads.push(p.to_vec());
                        }
                        if !nested.child_weights.is_empty() {
                            if child_weights.is_empty() {
                                fused = nested.fused;
                                child_weights = nested.child_weights;
                            } else if nested.fused.len() == fused.len() {
                                fused.or_assign(&nested.fused);
                                child_weights.extend(nested.child_weights);
                            }
                            // Width mismatch: leaf frames still forward;
                            // the centre's consensus vote decides.
                        }
                        frames.extend(nested.frames);
                        exclusions.extend(nested.exclusions.into_iter().map(|e| ChildExclusion {
                            router_id: e.router_id,
                            fault: RouterFault::AtLevel {
                                level: nested.level,
                                aggregator_id: Some(nested.aggregator_id),
                                fault: Box::new(e.fault),
                            },
                        }));
                    }
                }
                continue;
            }
            match RouterDigestView::parse(&bytes) {
                Err(e) => exclusions.push(ChildExclusion {
                    router_id,
                    fault: RouterFault::Wire(e.to_string()),
                }),
                Ok((view, _)) => {
                    let bm = view.aligned.bitmap;
                    if child_weights.is_empty() || bm.bit_len() == fused.len() {
                        let child = bm.to_bitmap();
                        let weight = child.weight();
                        if child_weights.is_empty() {
                            fused = child;
                        } else {
                            fused.or_assign(&child);
                        }
                        child_weights.push(ChildWeight { router_id, weight });
                    }
                    if let Some(p) = view.sketch_payload() {
                        sketch_payloads.push(p.to_vec());
                    }
                    frames.push(bytes);
                }
            }
        }
        let artifacts = merge_sketch_payloads(&sketch_payloads)
            .map(|payload| vec![Artifact::sketch(payload)])
            .unwrap_or_default();
        AggregateBundle {
            aggregator_id,
            epoch_id,
            level,
            fused,
            child_weights,
            frames,
            exclusions,
            artifacts,
        }
    }

    /// The first `DCSS` sketch artifact payload, if any.
    pub fn sketch_payload(&self) -> Option<&[u8]> {
        self.artifacts
            .iter()
            .find(|a| a.kind == dcs_collect::ARTIFACT_KIND_SKETCH)
            .map(|a| &a.payload[..])
    }

    /// Exact length [`Self::encode_wire`] will produce, in bytes.
    pub fn encoded_len(&self) -> usize {
        AGGREGATE_HEADER
            + 4
            + self.fused.words().len() * 8
            + 4
            + self.child_weights.len() * 12
            + 4
            + self.frames.iter().map(|f| 4 + f.len()).sum::<usize>()
            + 4
            + self
                .exclusions
                .iter()
                .map(|e| 8 + fault_encoded_len(&e.fault))
                .sum::<usize>()
            + artifact::section_len(&self.artifacts)
            + 4
    }

    /// Encodes the bundle as one CRC-trailed wire frame.
    ///
    /// # Panics
    /// Panics if a count or length exceeds its hard cap
    /// ([`MAX_AGGREGATE_CHILDREN`], [`MAX_FUSED_BITS`],
    /// [`MAX_CHILD_FRAME`]) — [`Self::assemble`] never builds such a
    /// bundle from in-cap inputs.
    pub fn encode_wire(&self) -> Vec<u8> {
        assert!(
            self.child_weights.len() <= MAX_AGGREGATE_CHILDREN as usize
                && self.frames.len() <= MAX_AGGREGATE_CHILDREN as usize
                && self.exclusions.len() <= MAX_AGGREGATE_CHILDREN as usize,
            "aggregate child count over cap"
        );
        assert!(
            self.fused.len() <= MAX_FUSED_BITS as usize,
            "fused bitmap over cap"
        );
        let total = self.encoded_len();
        let mut buf = Vec::with_capacity(total);
        buf.extend_from_slice(&AGGREGATE_MAGIC);
        buf.push(if self.artifacts.is_empty() {
            AGGREGATE_VERSION
        } else {
            AGGREGATE_VERSION_V2
        });
        buf.extend_from_slice(&self.aggregator_id.to_le_bytes());
        buf.extend_from_slice(&self.epoch_id.to_le_bytes());
        buf.push(self.level);
        buf.extend_from_slice(&(total as u32).to_le_bytes());
        buf.extend_from_slice(&(self.fused.len() as u32).to_le_bytes());
        for w in self.fused.words() {
            buf.extend_from_slice(&w.to_le_bytes());
        }
        buf.extend_from_slice(&(self.child_weights.len() as u32).to_le_bytes());
        for cw in &self.child_weights {
            buf.extend_from_slice(&cw.router_id.to_le_bytes());
            buf.extend_from_slice(&cw.weight.to_le_bytes());
        }
        buf.extend_from_slice(&(self.frames.len() as u32).to_le_bytes());
        for f in &self.frames {
            assert!(f.len() <= MAX_CHILD_FRAME, "child frame over cap");
            buf.extend_from_slice(&(f.len() as u32).to_le_bytes());
            buf.extend_from_slice(f);
        }
        buf.extend_from_slice(&(self.exclusions.len() as u32).to_le_bytes());
        for e in &self.exclusions {
            buf.extend_from_slice(&e.router_id.to_le_bytes());
            encode_fault(&mut buf, &e.fault, 0);
        }
        if !self.artifacts.is_empty() {
            let mut section =
                bytes::BytesMut::with_capacity(artifact::section_len(&self.artifacts));
            artifact::encode_section(&self.artifacts, &mut section)
                .expect("assemble never builds an over-cap artifact section");
            buf.extend_from_slice(&section);
        }
        let crc = crc32(&buf);
        buf.extend_from_slice(&crc.to_le_bytes());
        debug_assert_eq!(buf.len(), total, "encoded_len out of sync");
        buf
    }

    /// Decodes a frame produced by [`Self::encode_wire`] from the front
    /// of `buf`, returning the bundle and the bytes consumed. Never
    /// panics on arbitrary input — every declared count and length is
    /// checked against its cap and the remaining buffer before any
    /// allocation, and the CRC-32 trailer is verified before the body is
    /// parsed.
    pub fn decode_wire(buf: &[u8]) -> Result<(AggregateBundle, usize), AggregateError> {
        if buf.len() < AGGREGATE_HEADER {
            return Err(AggregateError::Truncated);
        }
        if buf[..4] != AGGREGATE_MAGIC {
            let mut m = [0u8; 4];
            m.copy_from_slice(&buf[..4]);
            return Err(AggregateError::BadMagic(m));
        }
        let version = buf[4];
        if version != AGGREGATE_VERSION && version != AGGREGATE_VERSION_V2 {
            return Err(AggregateError::BadVersion(version));
        }
        let aggregator_id = u64::from_le_bytes(buf[5..13].try_into().expect("8-byte slice"));
        let epoch_id = u64::from_le_bytes(buf[13..21].try_into().expect("8-byte slice"));
        let level = buf[21];
        let total = u32::from_le_bytes(buf[22..26].try_into().expect("4-byte slice")) as usize;
        if total < AGGREGATE_HEADER + 4 * 4 + 4 {
            return Err(AggregateError::Malformed("declared length below minimum"));
        }
        if total > buf.len() {
            return Err(AggregateError::Truncated);
        }
        let body = &buf[..total - 4];
        let declared = u32::from_le_bytes(buf[total - 4..total].try_into().expect("4-byte slice"));
        let computed = crc32(body);
        if declared != computed {
            return Err(AggregateError::ChecksumMismatch { declared, computed });
        }

        let mut off = AGGREGATE_HEADER;
        let get_u32 = |s: &[u8]| u32::from_le_bytes(s.try_into().expect("4-byte slice"));
        let get_u64 = |s: &[u8]| u64::from_le_bytes(s.try_into().expect("8-byte slice"));

        let fused_bits = get_u32(take(body, &mut off, 4)?);
        if fused_bits > MAX_FUSED_BITS {
            return Err(AggregateError::Malformed("fused bitmap over cap"));
        }
        let fused_bits = fused_bits as usize;
        let nwords = fused_bits.div_ceil(64);
        let word_bytes = take(body, &mut off, nwords * 8)?;
        let words: Vec<u64> = word_bytes
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().expect("8-byte slice")))
            .collect();
        // `Bitmap::from_words` asserts a clean tail; pre-check so hostile
        // input fails typed instead of panicking.
        if !fused_bits.is_multiple_of(64) {
            let tail_mask = (1u64 << (fused_bits % 64)) - 1;
            if words.last().is_some_and(|w| w & !tail_mask != 0) {
                return Err(AggregateError::Malformed("bits set past fused width"));
            }
        }
        let fused = Bitmap::from_words(fused_bits, words);

        let n_weights = get_u32(take(body, &mut off, 4)?);
        if n_weights > MAX_AGGREGATE_CHILDREN {
            return Err(AggregateError::Malformed("weight count over cap"));
        }
        if (n_weights as usize).saturating_mul(12) > body.len() - off {
            return Err(AggregateError::Malformed("weight count beyond buffer"));
        }
        let mut child_weights = Vec::with_capacity(n_weights as usize);
        for _ in 0..n_weights {
            child_weights.push(ChildWeight {
                router_id: get_u64(take(body, &mut off, 8)?),
                weight: get_u32(take(body, &mut off, 4)?),
            });
        }

        let n_frames = get_u32(take(body, &mut off, 4)?);
        if n_frames > MAX_AGGREGATE_CHILDREN {
            return Err(AggregateError::Malformed("frame count over cap"));
        }
        if (n_frames as usize).saturating_mul(4) > body.len() - off {
            return Err(AggregateError::Malformed("frame count beyond buffer"));
        }
        let mut frames = Vec::with_capacity(n_frames as usize);
        for _ in 0..n_frames {
            let len = get_u32(take(body, &mut off, 4)?) as usize;
            if len > MAX_CHILD_FRAME {
                return Err(AggregateError::Malformed("child frame over cap"));
            }
            frames.push(take(body, &mut off, len)?.to_vec());
        }

        let n_excl = get_u32(take(body, &mut off, 4)?);
        if n_excl > MAX_AGGREGATE_CHILDREN {
            return Err(AggregateError::Malformed("exclusion count over cap"));
        }
        if (n_excl as usize).saturating_mul(9) > body.len() - off {
            return Err(AggregateError::Malformed("exclusion count beyond buffer"));
        }
        let mut exclusions = Vec::with_capacity(n_excl as usize);
        for _ in 0..n_excl {
            let router_id = get_u64(take(body, &mut off, 8)?);
            let fault = decode_fault(body, &mut off, 0)?;
            exclusions.push(ChildExclusion { router_id, fault });
        }
        let mut artifacts = Vec::new();
        if version == AGGREGATE_VERSION_V2 {
            let mut cursor = &body[off..];
            let before = cursor.len();
            artifacts = artifact::decode_section(&mut cursor)
                .map_err(|_| AggregateError::Malformed("bad artifact section"))?;
            off += before - cursor.len();
        }
        if off != body.len() {
            return Err(AggregateError::Malformed("trailing bytes"));
        }
        Ok((
            AggregateBundle {
                aggregator_id,
                epoch_id,
                level,
                fused,
                child_weights,
                frames,
                exclusions,
                artifacts,
            },
            total,
        ))
    }
}

/// Merges the child `DCSS` payloads that agree with the first
/// decodable one's kind, domain and shape into one re-encoded payload.
/// Children with no sketch, an undecodable payload, or an incompatible
/// shape are skipped — their digests still forward verbatim, so
/// skipping only widens the sketch's error bound, never the detection
/// set. Returns `None` when nothing merged or the merged payload would
/// not fit an artifact slot.
fn merge_sketch_payloads(payloads: &[Vec<u8>]) -> Option<Vec<u8>> {
    let mut acc: Option<SketchWire> = None;
    for p in payloads {
        let Ok(wire) = decode_sketch(p) else { continue };
        match (&mut acc, wire) {
            (None, wire) => acc = Some(wire),
            (
                Some(SketchWire::SpaceSaving { domain, sketch }),
                SketchWire::SpaceSaving {
                    domain: d2,
                    sketch: s2,
                },
            ) if *domain == d2 && sketch.cap() == s2.cap() => sketch.merge(&s2),
            (
                Some(SketchWire::Distinct { domain, sketch }),
                SketchWire::Distinct {
                    domain: d2,
                    sketch: s2,
                },
            ) if *domain == d2
                && sketch.cap() == s2.cap()
                && sketch.kmv_size() == s2.kmv_size() =>
            {
                sketch.merge(&s2)
            }
            _ => {}
        }
    }
    let encoded = match acc? {
        SketchWire::SpaceSaving { domain, sketch } => {
            dcs_sketch::wire::encode_space_saving(&sketch, domain)
        }
        SketchWire::Distinct { domain, sketch } => {
            dcs_sketch::wire::encode_distinct(&sketch, domain)
        }
    };
    (encoded.len() <= MAX_ARTIFACT_PAYLOAD).then_some(encoded)
}

fn take<'b>(body: &'b [u8], off: &mut usize, n: usize) -> Result<&'b [u8], AggregateError> {
    if n > body.len() - *off {
        return Err(AggregateError::Truncated);
    }
    let s = &body[*off..*off + n];
    *off += n;
    Ok(s)
}

// Compact tagged binary encoding of RouterFault for the exclusion
// records — the wire counterpart of the JSON serde impl in
// `crate::ingest` (which reports use), kept binary here to match the
// CRC'd frame discipline.
const FT_WIRE: u8 = 0;
const FT_DUPLICATE: u8 = 1;
const FT_EMPTY_UNALIGNED: u8 = 2;
const FT_GROUP_LAYOUT: u8 = 3;
const FT_ALIGNED_WIDTH: u8 = 4;
const FT_ARRAYS_PER_GROUP: u8 = 5;
const FT_ARRAY_WIDTH: u8 = 6;
const FT_EPOCH_DESYNC: u8 = 7;
const FT_TIMED_OUT: u8 = 8;
const FT_CHECKSUM: u8 = 9;
const FT_INCOMPLETE: u8 = 10;
const FT_AT_LEVEL: u8 = 11;

/// Clips `s` to at most [`MAX_FAULT_STRING`] bytes on a char boundary.
fn clip_fault_string(s: &str) -> &str {
    if s.len() <= MAX_FAULT_STRING {
        return s;
    }
    let mut end = MAX_FAULT_STRING;
    while !s.is_char_boundary(end) {
        end -= 1;
    }
    &s[..end]
}

fn fault_encoded_len(fault: &RouterFault) -> usize {
    1 + match fault {
        RouterFault::Wire(e) => 4 + clip_fault_string(e).len(),
        RouterFault::DuplicateRouter { .. } => 8,
        RouterFault::EmptyUnaligned => 0,
        RouterFault::GroupLayout { .. }
        | RouterFault::AlignedWidth { .. }
        | RouterFault::ArraysPerGroup { .. }
        | RouterFault::ArrayWidth { .. }
        | RouterFault::EpochDesync { .. }
        | RouterFault::TimedOut { .. }
        | RouterFault::Incomplete { .. } => 16,
        RouterFault::ChecksumMismatch { .. } => 4,
        RouterFault::AtLevel {
            aggregator_id,
            fault,
            ..
        } => 2 + if aggregator_id.is_some() { 8 } else { 0 } + fault_encoded_len(fault),
    }
}

fn encode_fault(buf: &mut Vec<u8>, fault: &RouterFault, depth: usize) {
    assert!(depth < MAX_FAULT_DEPTH, "fault nesting over cap");
    let two = |buf: &mut Vec<u8>, tag: u8, a: u64, b: u64| {
        buf.push(tag);
        buf.extend_from_slice(&a.to_le_bytes());
        buf.extend_from_slice(&b.to_le_bytes());
    };
    match fault {
        RouterFault::Wire(e) => {
            let s = clip_fault_string(e);
            buf.push(FT_WIRE);
            buf.extend_from_slice(&(s.len() as u32).to_le_bytes());
            buf.extend_from_slice(s.as_bytes());
        }
        RouterFault::DuplicateRouter { first_index } => {
            buf.push(FT_DUPLICATE);
            buf.extend_from_slice(&(*first_index as u64).to_le_bytes());
        }
        RouterFault::EmptyUnaligned => buf.push(FT_EMPTY_UNALIGNED),
        RouterFault::GroupLayout {
            arrays,
            arrays_per_group,
        } => two(
            buf,
            FT_GROUP_LAYOUT,
            *arrays as u64,
            *arrays_per_group as u64,
        ),
        RouterFault::AlignedWidth { expected, got } => {
            two(buf, FT_ALIGNED_WIDTH, *expected as u64, *got as u64)
        }
        RouterFault::ArraysPerGroup { expected, got } => {
            two(buf, FT_ARRAYS_PER_GROUP, *expected as u64, *got as u64)
        }
        RouterFault::ArrayWidth { expected, got } => {
            two(buf, FT_ARRAY_WIDTH, *expected as u64, *got as u64)
        }
        RouterFault::EpochDesync { expected, got } => two(buf, FT_EPOCH_DESYNC, *expected, *got),
        RouterFault::TimedOut { received, total } => {
            two(buf, FT_TIMED_OUT, *received as u64, *total as u64)
        }
        RouterFault::ChecksumMismatch { seq } => {
            buf.push(FT_CHECKSUM);
            buf.extend_from_slice(&seq.to_le_bytes());
        }
        RouterFault::Incomplete { received, total } => {
            two(buf, FT_INCOMPLETE, *received as u64, *total as u64)
        }
        RouterFault::AtLevel {
            level,
            aggregator_id,
            fault,
        } => {
            buf.push(FT_AT_LEVEL);
            buf.push(*level);
            match aggregator_id {
                Some(agg) => {
                    buf.push(1);
                    buf.extend_from_slice(&agg.to_le_bytes());
                }
                None => buf.push(0),
            }
            encode_fault(buf, fault, depth + 1);
        }
    }
}

fn decode_fault(body: &[u8], off: &mut usize, depth: usize) -> Result<RouterFault, AggregateError> {
    if depth >= MAX_FAULT_DEPTH {
        return Err(AggregateError::Malformed("fault nesting over cap"));
    }
    let get_u32 = |s: &[u8]| u32::from_le_bytes(s.try_into().expect("4-byte slice"));
    let get_u64 = |s: &[u8]| u64::from_le_bytes(s.try_into().expect("8-byte slice"));
    let tag = take(body, off, 1)?[0];
    let two = |off: &mut usize| -> Result<(u64, u64), AggregateError> {
        let a = get_u64(take(body, off, 8)?);
        let b = get_u64(take(body, off, 8)?);
        Ok((a, b))
    };
    let as_usize = |v: u64| {
        usize::try_from(v).map_err(|_| AggregateError::Malformed("fault field exceeds usize"))
    };
    Ok(match tag {
        FT_WIRE => {
            let len = get_u32(take(body, off, 4)?) as usize;
            if len > MAX_FAULT_STRING {
                return Err(AggregateError::Malformed("fault string over cap"));
            }
            let s = std::str::from_utf8(take(body, off, len)?)
                .map_err(|_| AggregateError::Malformed("fault string not UTF-8"))?;
            RouterFault::Wire(s.to_string())
        }
        FT_DUPLICATE => RouterFault::DuplicateRouter {
            first_index: as_usize(get_u64(take(body, off, 8)?))?,
        },
        FT_EMPTY_UNALIGNED => RouterFault::EmptyUnaligned,
        FT_GROUP_LAYOUT => {
            let (a, b) = two(off)?;
            RouterFault::GroupLayout {
                arrays: as_usize(a)?,
                arrays_per_group: as_usize(b)?,
            }
        }
        FT_ALIGNED_WIDTH => {
            let (a, b) = two(off)?;
            RouterFault::AlignedWidth {
                expected: as_usize(a)?,
                got: as_usize(b)?,
            }
        }
        FT_ARRAYS_PER_GROUP => {
            let (a, b) = two(off)?;
            RouterFault::ArraysPerGroup {
                expected: as_usize(a)?,
                got: as_usize(b)?,
            }
        }
        FT_ARRAY_WIDTH => {
            let (a, b) = two(off)?;
            RouterFault::ArrayWidth {
                expected: as_usize(a)?,
                got: as_usize(b)?,
            }
        }
        FT_EPOCH_DESYNC => {
            let (expected, got) = two(off)?;
            RouterFault::EpochDesync { expected, got }
        }
        FT_TIMED_OUT => {
            let (a, b) = two(off)?;
            RouterFault::TimedOut {
                received: as_usize(a)?,
                total: as_usize(b)?,
            }
        }
        FT_CHECKSUM => RouterFault::ChecksumMismatch {
            seq: get_u32(take(body, off, 4)?),
        },
        FT_INCOMPLETE => {
            let (a, b) = two(off)?;
            RouterFault::Incomplete {
                received: as_usize(a)?,
                total: as_usize(b)?,
            }
        }
        FT_AT_LEVEL => {
            let level = take(body, off, 1)?[0];
            let aggregator_id = match take(body, off, 1)?[0] {
                0 => None,
                1 => Some(get_u64(take(body, off, 8)?)),
                _ => return Err(AggregateError::Malformed("bad aggregator-id presence byte")),
            };
            RouterFault::AtLevel {
                level,
                aggregator_id,
                fault: Box::new(decode_fault(body, off, depth + 1)?),
            }
        }
        _ => return Err(AggregateError::Malformed("unknown fault tag")),
    })
}

/// A regional aggregator for one epoch: an [`EpochCollector`] over its
/// child routers plus the pre-fusion that turns the collected epoch into
/// one [`AggregateBundle`] for the tier above.
///
/// Like the collector it wraps, an aggregator is per-epoch: open one per
/// epoch with [`Aggregator::new`], drive it with
/// [`offer`](Aggregator::offer)/[`poll`](Aggregator::poll) like a
/// collector, and [`finalize`](Aggregator::finalize) at
/// [`ready`](Aggregator::ready).
#[derive(Debug)]
pub struct Aggregator {
    id: u64,
    level: u8,
    /// Children in router-id order — the collector's session order, so
    /// `children[exclusion.index]` is the excluded child.
    children: Vec<u64>,
    collector: EpochCollector,
}

impl Aggregator {
    /// Opens an aggregator for `epoch_id` expecting one digest bundle
    /// from each of `children`. `level` is this tier's height above the
    /// leaves (the first aggregation tier is 1); `cfg`, `seed` and `now`
    /// are the wrapped collector's.
    pub fn new(
        id: u64,
        level: u8,
        epoch_id: u64,
        children: impl IntoIterator<Item = u64>,
        cfg: CollectorConfig,
        seed: u64,
        now: u64,
    ) -> Self {
        let mut children: Vec<u64> = children.into_iter().collect();
        children.sort_unstable();
        children.dedup();
        assert!(
            children.len() <= MAX_AGGREGATE_CHILDREN as usize,
            "aggregator children over cap"
        );
        let collector = EpochCollector::new(epoch_id, children.iter().copied(), cfg, seed, now);
        Aggregator {
            id,
            level,
            children,
            collector,
        }
    }

    /// This aggregator's id (its router id on the hop above).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// This tier's height above the leaves.
    pub fn level(&self) -> u8 {
        self.level
    }

    /// The expected children, in router-id order.
    pub fn children(&self) -> &[u64] {
        &self.children
    }

    /// Offers one child chunk frame (see [`EpochCollector::offer`]).
    pub fn offer(&mut self, frame: &[u8], now: u64) -> ChunkDisposition {
        self.collector.offer(frame, now)
    }

    /// Fires due retransmit timers (see [`EpochCollector::poll`]).
    pub fn poll(&mut self, now: u64) -> Vec<RetransmitRequest> {
        self.collector.poll(now)
    }

    /// Whether the straggler policy says to stop waiting.
    pub fn ready(&self, now: u64) -> bool {
        self.collector.ready(now)
    }

    /// The wrapped collector's absolute deadline tick.
    pub fn deadline(&self) -> u64 {
        self.collector.deadline()
    }

    /// Child-hop delivery accounting so far.
    pub fn stats(&self) -> TransportStats {
        self.collector.stats()
    }

    /// Finalizes the child hop and pre-fuses the epoch into one
    /// [`AggregateBundle`]: transport-lost children become typed
    /// exclusions, reassembled frames embed verbatim, parseable aligned
    /// bitmaps OR-fuse with per-child weights. Records
    /// `aggregate_fuse_ns{level}`, `aggregate_children_per_bundle`,
    /// `aggregate_forwarded_bytes_total` and
    /// `aggregate_children_excluded_total{fault}` into `metrics`.
    pub fn finalize(&mut self, now: u64, metrics: &MetricsRegistry) -> AggregateBundle {
        let t0 = Instant::now();
        let epoch = self.collector.finalize(now);
        let frames: Vec<(u64, Vec<u8>)> = epoch
            .frames
            .into_iter()
            .map(|(index, bytes)| (self.children[index], bytes))
            .collect();
        let exclusions: Vec<ChildExclusion> = epoch
            .exclusions
            .into_iter()
            .map(|e| ChildExclusion {
                router_id: e.router_id.map_or(self.children[e.index], |r| r as u64),
                fault: e.fault,
            })
            .collect();
        let bundle = AggregateBundle::assemble(
            self.id,
            self.collector.epoch_id(),
            self.level,
            frames,
            exclusions,
        );
        let level = [("level", level_label(self.level))];
        metrics
            .gauge("aggregate_fuse_ns", &level)
            .set((t0.elapsed().as_nanos() as u64).max(1));
        metrics
            .gauge("aggregate_children_per_bundle", &level)
            .set(bundle.leaves() as u64);
        metrics
            .counter("aggregate_forwarded_bytes_total", &level)
            .add(bundle.encoded_len() as u64);
        for e in &bundle.exclusions {
            metrics
                .counter(
                    "aggregate_children_excluded_total",
                    &[("fault", e.fault.kind())],
                )
                .inc();
        }
        if let Some(p) = bundle.sketch_payload() {
            metrics
                .counter("aggregate_sketch_bytes_total", &level)
                .add(p.len() as u64);
            metrics
                .counter("aggregate_sketches_merged_total", &level)
                .inc();
        }
        bundle
    }
}

/// Stable label for an aggregation level (bounded cardinality).
pub(crate) fn level_label(level: u8) -> &'static str {
    match level {
        0 => "0",
        1 => "1",
        2 => "2",
        3 => "3",
        _ => "4+",
    }
}

/// Convenience for simulations: drives a whole [`CollectedEpoch`] worth
/// of already-reassembled aggregate bundles out of a centre-side
/// collector, pairing each frame with its aggregator id. Returns
/// `(aggregator_id, bundle bytes)` in router order plus the lost
/// aggregators' exclusions untouched — see
/// [`AnalysisCenter::analyze_epoch_aggregated_collected`](crate::center::AnalysisCenter::analyze_epoch_aggregated_collected)
/// for the ingest side.
pub fn collected_bundles(epoch: &CollectedEpoch) -> Vec<&[u8]> {
    epoch.frames.iter().map(|(_, b)| b.as_slice()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monitor::{MonitorConfig, MonitoringPoint};
    use crate::session::StragglerPolicy;
    use crate::transport::chunk_bundle;
    use dcs_traffic::{gen, BackgroundConfig, SizeMix};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn leaf_frame(seed: u64, id: usize, bits: usize) -> Vec<u8> {
        let mut r = StdRng::seed_from_u64(seed);
        let cfg = MonitorConfig::small(7, bits, 4);
        let mut mp = MonitoringPoint::new(id, &cfg);
        let pkts = gen::generate_epoch(
            &mut r,
            &BackgroundConfig {
                packets: 200,
                flows: 50,
                zipf_exponent: 1.0,
                size_mix: SizeMix::constant(536),
            },
        );
        mp.observe_all(&pkts);
        mp.finish_epoch()
            .encode_wire()
            .expect("bundle fits the wire format")
            .to_vec()
    }

    fn sample_bundle() -> AggregateBundle {
        let frames: Vec<(u64, Vec<u8>)> = (0..3)
            .map(|id| (id, leaf_frame(40 + id, id as usize, 1 << 10)))
            .collect();
        AggregateBundle::assemble(
            77,
            5,
            1,
            frames,
            vec![ChildExclusion {
                router_id: 9,
                fault: RouterFault::TimedOut {
                    received: 1,
                    total: 4,
                },
            }],
        )
    }

    #[test]
    fn assemble_fuses_weights_and_embeds_frames_verbatim() {
        let frames: Vec<(u64, Vec<u8>)> = (0..3)
            .map(|id| (id, leaf_frame(40 + id, id as usize, 1 << 10)))
            .collect();
        let originals: Vec<Vec<u8>> = frames.iter().map(|(_, f)| f.clone()).collect();
        let bundle = AggregateBundle::assemble(77, 5, 1, frames, Vec::new());
        assert_eq!(bundle.frames, originals, "frames must embed verbatim");
        assert_eq!(bundle.child_weights.len(), 3);
        assert_eq!(bundle.fused.len(), 1 << 10);
        // The fused bitmap is the OR of the children: each child's bits
        // are a subset, and the fused weight is bounded by the sum.
        let sum: u64 = bundle.child_weights.iter().map(|w| w.weight as u64).sum();
        let max = bundle.child_weights.iter().map(|w| w.weight).max().unwrap();
        assert!(u64::from(bundle.fused.weight()) <= sum);
        assert!(bundle.fused.weight() >= max);
        for (i, f) in originals.iter().enumerate() {
            let (view, _) = RouterDigestView::parse(f).unwrap();
            let child = view.aligned.bitmap.to_bitmap();
            for (w, (fw, cw)) in bundle
                .fused
                .words()
                .iter()
                .zip(child.words().iter())
                .enumerate()
            {
                assert_eq!(cw & !fw, 0, "child {i} word {w} has bits the fuse lost");
            }
        }
        assert_eq!(bundle.leaves(), 3);
    }

    #[test]
    fn assemble_flattens_nested_bundles_into_leaf_accounting() {
        // Two level-1 aggregators over disjoint leaf sets, one with a
        // timed-out leaf, feed a level-2 aggregator alongside one direct
        // leaf. The level-2 bundle must account in leaves, not bundles.
        let leaves_a: Vec<(u64, Vec<u8>)> = (0..3)
            .map(|id| (id, leaf_frame(40 + id, id as usize, 1 << 10)))
            .collect();
        let leaves_b: Vec<(u64, Vec<u8>)> = (3..5)
            .map(|id| (id, leaf_frame(40 + id, id as usize, 1 << 10)))
            .collect();
        let mut expected_frames: Vec<Vec<u8>> = leaves_a.iter().map(|(_, f)| f.clone()).collect();
        expected_frames.extend(leaves_b.iter().map(|(_, f)| f.clone()));
        let direct = leaf_frame(99, 6, 1 << 10);
        expected_frames.push(direct.clone());

        let l1_a = AggregateBundle::assemble(100, 5, 1, leaves_a, Vec::new());
        let l1_b = AggregateBundle::assemble(
            101,
            5,
            1,
            leaves_b,
            vec![ChildExclusion {
                router_id: 5,
                fault: RouterFault::TimedOut {
                    received: 1,
                    total: 4,
                },
            }],
        );
        let l2 = AggregateBundle::assemble(
            200,
            5,
            2,
            vec![
                (100, l1_a.encode_wire()),
                (101, l1_b.encode_wire()),
                (6, direct),
            ],
            Vec::new(),
        );

        assert_eq!(l2.frames, expected_frames, "leaf frames splice verbatim");
        assert_eq!(l2.child_weights.len(), 6, "leaf weights carry over");
        assert_eq!(
            l2.child_weights
                .iter()
                .map(|w| w.router_id)
                .collect::<Vec<_>>(),
            vec![0, 1, 2, 3, 4, 6]
        );
        assert_eq!(l2.fused.len(), 1 << 10);
        assert_eq!(l2.leaves(), 7, "6 delivered leaves + 1 exclusion");
        // The excluded leaf's fault gained one AtLevel wrapper recording
        // which aggregator lost it.
        assert_eq!(l2.exclusions.len(), 1);
        assert_eq!(l2.exclusions[0].router_id, 5);
        match &l2.exclusions[0].fault {
            RouterFault::AtLevel {
                level,
                aggregator_id,
                fault,
            } => {
                assert_eq!(*level, 1);
                assert_eq!(*aggregator_id, Some(101));
                assert!(matches!(**fault, RouterFault::TimedOut { .. }));
            }
            other => panic!("expected AtLevel wrapper, got {other:?}"),
        }
        // And the flattened bundle still round-trips the wire format.
        let (decoded, _) = AggregateBundle::decode_wire(&l2.encode_wire()).unwrap();
        assert_eq!(decoded, l2);
    }

    #[test]
    fn assemble_excludes_unparseable_and_skips_mismatched_widths() {
        let good = leaf_frame(50, 0, 1 << 10);
        let wide = leaf_frame(51, 1, 1 << 12);
        let garbage = vec![0xEE; 64];
        let bundle = AggregateBundle::assemble(
            3,
            0,
            1,
            vec![(0, good.clone()), (1, wide.clone()), (2, garbage)],
            Vec::new(),
        );
        // The garbage frame is dropped with a wire fault; the
        // mismatched-width frame is forwarded but not fused.
        assert_eq!(bundle.frames, vec![good, wide]);
        assert_eq!(bundle.child_weights.len(), 1);
        assert_eq!(bundle.child_weights[0].router_id, 0);
        assert_eq!(bundle.fused.len(), 1 << 10);
        assert_eq!(bundle.exclusions.len(), 1);
        assert_eq!(bundle.exclusions[0].router_id, 2);
        assert!(matches!(bundle.exclusions[0].fault, RouterFault::Wire(_)));
        assert_eq!(bundle.leaves(), 3);
    }

    #[test]
    fn bundle_wire_roundtrip() {
        let bundle = sample_bundle();
        let wire = bundle.encode_wire();
        assert_eq!(wire.len(), bundle.encoded_len());
        let (back, used) = AggregateBundle::decode_wire(&wire).expect("roundtrip");
        assert_eq!(used, wire.len());
        assert_eq!(back, bundle);
        // A nested AtLevel fault survives the fault codec too.
        let mut nested = bundle.clone();
        nested.exclusions.push(ChildExclusion {
            router_id: 11,
            fault: RouterFault::AtLevel {
                level: 2,
                aggregator_id: None,
                fault: Box::new(RouterFault::Wire("труба".into())),
            },
        });
        let wire = nested.encode_wire();
        let (back, _) = AggregateBundle::decode_wire(&wire).expect("nested roundtrip");
        assert_eq!(back, nested);
    }

    #[test]
    fn bundle_wire_rejects_corruption_without_panicking() {
        let wire = sample_bundle().encode_wire();
        for cut in 0..wire.len() {
            assert!(
                AggregateBundle::decode_wire(&wire[..cut]).is_err(),
                "strict prefix of {cut} bytes decoded"
            );
        }
        for byte in (0..wire.len()).step_by(11) {
            let mut bad = wire.clone();
            bad[byte] ^= 0x20;
            assert!(
                AggregateBundle::decode_wire(&bad).is_err(),
                "bit flip at {byte} decoded"
            );
        }
        let mut bad = wire.clone();
        bad[0] = b'X';
        assert!(matches!(
            AggregateBundle::decode_wire(&bad),
            Err(AggregateError::BadMagic(_))
        ));
        let mut bad = wire.clone();
        bad[4] = 9;
        assert!(matches!(
            AggregateBundle::decode_wire(&bad),
            Err(AggregateError::BadVersion(9))
        ));
    }

    #[test]
    fn assemble_merges_child_sketches_into_one_v2_artifact() {
        use crate::monitor::SketchSpec;
        // Three leaves with sketches enabled; each observes a distinct
        // Zipf epoch, so their Space-Saving tables differ.
        let frames: Vec<(u64, Vec<u8>)> = (0..3u64)
            .map(|id| {
                let mut r = StdRng::seed_from_u64(70 + id);
                let cfg =
                    MonitorConfig::small(7, 1 << 10, 4).with_sketch(SketchSpec::heavy_content(16));
                let mut mp = MonitoringPoint::new(id as usize, &cfg);
                let pkts = gen::generate_epoch(
                    &mut r,
                    &BackgroundConfig {
                        packets: 200,
                        flows: 50,
                        zipf_exponent: 1.0,
                        size_mix: SizeMix::constant(536),
                    },
                );
                mp.observe_all(&pkts);
                (id, mp.finish_epoch().encode_wire().unwrap().to_vec())
            })
            .collect();

        // Reference merge straight from the child payloads.
        let mut expect: Option<dcs_sketch::SpaceSaving> = None;
        for (_, f) in &frames {
            let (view, _) = RouterDigestView::parse(f).unwrap();
            let decoded = decode_sketch(view.sketch_payload().unwrap()).unwrap();
            let SketchWire::SpaceSaving { sketch, .. } = decoded else {
                panic!("expected a Space-Saving sketch");
            };
            match &mut expect {
                None => expect = Some(sketch),
                Some(acc) => acc.merge(&sketch),
            }
        }
        let expect = expect.unwrap();

        let bundle = AggregateBundle::assemble(77, 5, 1, frames, Vec::new());
        let payload = bundle.sketch_payload().expect("merged sketch rides along");
        let SketchWire::SpaceSaving { domain, sketch } = decode_sketch(payload).unwrap() else {
            panic!("expected a Space-Saving sketch");
        };
        assert_eq!(domain, dcs_sketch::SketchDomain::ContentIndex.to_u8());
        assert_eq!(sketch, expect, "tier merge == direct child merge");
        assert_eq!(sketch.total(), 600, "all three children's mass merged");

        // v2 wire round trip carries the artifact; sketchless stays v1.
        let wire = bundle.encode_wire();
        assert_eq!(wire[4], AGGREGATE_VERSION_V2);
        assert_eq!(wire.len(), bundle.encoded_len());
        let (back, used) = AggregateBundle::decode_wire(&wire).unwrap();
        assert_eq!(used, wire.len());
        assert_eq!(back, bundle);
        let plain = sample_bundle();
        assert!(plain.artifacts.is_empty());
        assert_eq!(plain.encode_wire()[4], AGGREGATE_VERSION);

        // Nested flattening merges the lower tier's sketch too.
        let nested =
            AggregateBundle::assemble(200, 5, 2, vec![(77, bundle.encode_wire())], Vec::new());
        let SketchWire::SpaceSaving { sketch: s2, .. } =
            decode_sketch(nested.sketch_payload().unwrap()).unwrap()
        else {
            panic!("expected a Space-Saving sketch");
        };
        assert_eq!(s2, expect, "nested tier forwards the merged sketch");
    }

    #[test]
    fn aggregator_collects_children_and_reports_losses() {
        let ccfg = CollectorConfig {
            deadline: 100,
            straggler: StragglerPolicy::Deadline,
            ..Default::default()
        };
        let metrics = MetricsRegistry::new();
        let mut agg = Aggregator::new(500, 1, 0, [10, 11, 12], ccfg, 1, 0);
        assert_eq!(agg.children(), &[10, 11, 12]);
        for child in [10u64, 11] {
            let frame = leaf_frame(60 + child, child as usize, 1 << 10);
            for chunk in chunk_bundle(child, 0, &frame, 256) {
                assert!(matches!(
                    agg.offer(&chunk, 0),
                    ChunkDisposition::Accepted { .. }
                ));
            }
        }
        // Child 12 stays silent; the deadline expires.
        assert!(!agg.ready(50));
        assert!(agg.ready(100));
        let bundle = agg.finalize(100, &metrics);
        assert_eq!(bundle.aggregator_id, 500);
        assert_eq!(bundle.level, 1);
        assert_eq!(bundle.frames.len(), 2);
        assert_eq!(bundle.child_weights.len(), 2);
        assert_eq!(bundle.exclusions.len(), 1);
        assert_eq!(bundle.exclusions[0].router_id, 12);
        assert!(matches!(
            bundle.exclusions[0].fault,
            RouterFault::TimedOut { .. }
        ));
        let snap = metrics.snapshot();
        assert!(snap.gauge("aggregate_fuse_ns{level=1}") >= Some(1));
        assert_eq!(
            snap.gauge("aggregate_children_per_bundle{level=1}"),
            Some(3)
        );
        assert_eq!(
            snap.counter("aggregate_children_excluded_total{fault=timed_out}"),
            Some(1)
        );
        assert!(
            snap.counter("aggregate_forwarded_bytes_total{level=1}")
                >= Some(bundle.encoded_len() as u64)
        );
    }
}
