//! Validation of shipped digest bundles before fusion — the ingest layer.
//!
//! The paper assumes the analysis centre receives one clean digest per
//! monitored link per epoch. A production centre does not: frames arrive
//! truncated or bit-flipped off the measurement plane, routers double-ship
//! after a retransmit, a rebooted router lags an epoch behind, and a
//! misconfigured one ships digests of the wrong shape. This module turns
//! that mess into
//!
//! * the largest internally consistent subset of digests — the **quorum**
//!   both detection pipelines then run on — and
//! * a typed, per-bundle account of everything excluded and why
//!   ([`IngestReport`]), surfaced in every
//!   [`EpochReport`](crate::report::EpochReport) so degraded epochs are
//!   visible rather than silent.
//!
//! The epoch's reference shape (aligned bitmap width, arrays per group,
//! unaligned array width, epoch id) is chosen by **majority vote** among
//! the internally coherent bundles, so a single corrupt digest at the
//! front of the batch cannot poison the epoch. Only when fewer than the
//! configured quorum of bundles survive does ingest fail as a whole, with
//! a typed [`IngestError`] instead of a panic.

use crate::monitor::{RouterDigest, RouterDigestView};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// What validation needs to know about one digest bundle — implemented by
/// owned [`RouterDigest`]s and borrowed [`RouterDigestView`]s so the copying
/// and the zero-copy ingest paths share one validator and therefore one
/// exclusion accounting.
pub trait DigestShape {
    /// The shipping router's id.
    fn router_id(&self) -> usize;
    /// The bundle's epoch id.
    fn epoch_id(&self) -> u64;
    /// Aligned bitmap width in bits.
    fn aligned_bits(&self) -> usize;
    /// Claimed arrays per flow-split group.
    fn arrays_per_group(&self) -> usize;
    /// Total unaligned arrays shipped.
    fn array_count(&self) -> usize;
    /// Width in bits of unaligned array `i` (`i < array_count()`).
    fn array_bits(&self, i: usize) -> usize;
}

impl DigestShape for RouterDigest {
    fn router_id(&self) -> usize {
        self.router_id
    }
    fn epoch_id(&self) -> u64 {
        self.epoch_id
    }
    fn aligned_bits(&self) -> usize {
        self.aligned.bitmap.len()
    }
    fn arrays_per_group(&self) -> usize {
        self.unaligned.arrays_per_group
    }
    fn array_count(&self) -> usize {
        self.unaligned.arrays.len()
    }
    fn array_bits(&self, i: usize) -> usize {
        self.unaligned.arrays[i].len()
    }
}

impl DigestShape for RouterDigestView<'_> {
    fn router_id(&self) -> usize {
        self.router_id
    }
    fn epoch_id(&self) -> u64 {
        self.epoch_id
    }
    fn aligned_bits(&self) -> usize {
        self.aligned.bitmap.len()
    }
    fn arrays_per_group(&self) -> usize {
        self.unaligned.arrays_per_group
    }
    fn array_count(&self) -> usize {
        self.unaligned.array_count()
    }
    fn array_bits(&self, i: usize) -> usize {
        self.unaligned.array(i).len()
    }
}

/// Why one submitted digest bundle was excluded from an epoch's fusion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RouterFault {
    /// The wire frame failed to decode (rendered
    /// [`WireError`](dcs_collect::WireError)).
    Wire(String),
    /// A bundle for the same router id was already accepted this epoch.
    DuplicateRouter {
        /// Batch index of the bundle that was accepted first.
        first_index: usize,
    },
    /// The unaligned digest ships no arrays at all.
    EmptyUnaligned,
    /// `arrays_per_group` is zero or does not divide the array count.
    GroupLayout {
        /// Arrays shipped.
        arrays: usize,
        /// Claimed arrays per group.
        arrays_per_group: usize,
    },
    /// The aligned bitmap width disagrees with the epoch consensus.
    AlignedWidth {
        /// Consensus width in bits.
        expected: usize,
        /// This bundle's width.
        got: usize,
    },
    /// `arrays_per_group` disagrees with the epoch consensus.
    ArraysPerGroup {
        /// Consensus arrays per group.
        expected: usize,
        /// This bundle's value.
        got: usize,
    },
    /// An unaligned array width disagrees — internally (mixed widths in
    /// one digest) or with the epoch consensus.
    ArrayWidth {
        /// Expected width in bits.
        expected: usize,
        /// Offending width.
        got: usize,
    },
    /// The bundle's epoch id disagrees with the epoch consensus.
    EpochDesync {
        /// Consensus epoch id.
        expected: u64,
        /// This bundle's epoch id.
        got: u64,
    },
    /// The router's session was still incomplete when the epoch deadline
    /// expired (transport layer).
    TimedOut {
        /// Chunks received before the deadline.
        received: usize,
        /// Declared total chunks (0 when no chunk ever arrived, so the
        /// total was never learned).
        total: usize,
    },
    /// A chunk of the router's bundle repeatedly failed its CRC-32
    /// trailer and the retransmit budget ran out (transport layer).
    ChecksumMismatch {
        /// Lowest still-missing chunk that failed its checksum.
        seq: u32,
    },
    /// The session was finalized before the deadline with chunks still
    /// missing — e.g. the channel closed or retransmits were exhausted
    /// (transport layer).
    Incomplete {
        /// Chunks received.
        received: usize,
        /// Declared total chunks (0 when never learned).
        total: usize,
    },
    /// The fault was recorded below the centre, at an aggregation tier
    /// (see [`crate::aggregate`]): a child router excluded while its
    /// regional aggregator assembled the epoch's bundle, or a whole
    /// aggregator lost on the way up. Wraps the underlying fault so
    /// cross-level accounting keeps the original reason.
    AtLevel {
        /// Aggregation tier the fault was recorded at (the centre is
        /// level 0, the first aggregation tier above the leaves 1).
        level: u8,
        /// The aggregator that recorded (or *was*) the fault, when
        /// known — an aggregate bundle that failed to decode at the
        /// centre has none.
        aggregator_id: Option<u64>,
        /// The underlying fault.
        fault: Box<RouterFault>,
    },
}

impl RouterFault {
    /// Stable lowercase tag of the fault variant — the wire-format "kind"
    /// discriminant, also used as the `fault` label of the
    /// `ingest_excluded_total` metric family. [`RouterFault::AtLevel`]
    /// delegates to the wrapped fault (its own serde tag is `at_level`),
    /// so a child timing out at an aggregator counts under the same
    /// `timed_out` label as one timing out at the centre.
    pub fn kind(&self) -> &'static str {
        match self {
            RouterFault::Wire(_) => "wire",
            RouterFault::DuplicateRouter { .. } => "duplicate_router",
            RouterFault::EmptyUnaligned => "empty_unaligned",
            RouterFault::GroupLayout { .. } => "group_layout",
            RouterFault::AlignedWidth { .. } => "aligned_width",
            RouterFault::ArraysPerGroup { .. } => "arrays_per_group",
            RouterFault::ArrayWidth { .. } => "array_width",
            RouterFault::EpochDesync { .. } => "epoch_desync",
            RouterFault::TimedOut { .. } => "timed_out",
            RouterFault::ChecksumMismatch { .. } => "checksum_mismatch",
            RouterFault::Incomplete { .. } => "incomplete",
            RouterFault::AtLevel { fault, .. } => fault.kind(),
        }
    }

    /// The aggregation tier the fault was recorded at: the wrapped level
    /// for [`RouterFault::AtLevel`], 0 (the centre) for everything else.
    pub fn level(&self) -> u8 {
        match self {
            RouterFault::AtLevel { level, .. } => *level,
            _ => 0,
        }
    }
}

impl fmt::Display for RouterFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RouterFault::Wire(e) => write!(f, "wire frame rejected: {e}"),
            RouterFault::DuplicateRouter { first_index } => {
                write!(f, "duplicate router id (first seen at index {first_index})")
            }
            RouterFault::EmptyUnaligned => write!(f, "unaligned digest ships no arrays"),
            RouterFault::GroupLayout {
                arrays,
                arrays_per_group,
            } => write!(
                f,
                "{arrays} arrays do not form whole groups of {arrays_per_group}"
            ),
            RouterFault::AlignedWidth { expected, got } => {
                write!(f, "aligned bitmap width {got}, epoch consensus {expected}")
            }
            RouterFault::ArraysPerGroup { expected, got } => {
                write!(f, "arrays per group {got}, epoch consensus {expected}")
            }
            RouterFault::ArrayWidth { expected, got } => {
                write!(f, "array width {got}, expected {expected}")
            }
            RouterFault::EpochDesync { expected, got } => {
                write!(f, "epoch id {got}, epoch consensus {expected}")
            }
            RouterFault::TimedOut { received, total } => {
                write!(
                    f,
                    "deadline expired with {received}/{total} chunks received"
                )
            }
            RouterFault::ChecksumMismatch { seq } => {
                write!(
                    f,
                    "chunk {seq} failed its checksum past the retransmit budget"
                )
            }
            RouterFault::Incomplete { received, total } => {
                write!(
                    f,
                    "session finalized with {received}/{total} chunks received"
                )
            }
            RouterFault::AtLevel {
                level,
                aggregator_id,
                fault,
            } => {
                write!(f, "at level {level}")?;
                if let Some(agg) = aggregator_id {
                    write!(f, " (aggregator {agg})")?;
                }
                write!(f, ": {fault}")
            }
        }
    }
}

// The vendored serde derive handles named-field structs and unit enums
// only, so the data-carrying fault enums serialize by hand as tagged
// objects: {"kind": <variant>, ...fields}.
impl serde::Serialize for RouterFault {
    fn to_value(&self) -> serde::Value {
        let tag = |kind: &str| ("kind".to_string(), serde::Value::Str(kind.to_string()));
        let uint = |name: &str, v: usize| (name.to_string(), serde::Value::UInt(v as u64));
        serde::Value::Object(match self {
            RouterFault::Wire(e) => vec![
                tag("wire"),
                ("error".to_string(), serde::Value::Str(e.clone())),
            ],
            RouterFault::DuplicateRouter { first_index } => {
                vec![tag("duplicate_router"), uint("first_index", *first_index)]
            }
            RouterFault::EmptyUnaligned => vec![tag("empty_unaligned")],
            RouterFault::GroupLayout {
                arrays,
                arrays_per_group,
            } => vec![
                tag("group_layout"),
                uint("arrays", *arrays),
                uint("arrays_per_group", *arrays_per_group),
            ],
            RouterFault::AlignedWidth { expected, got } => vec![
                tag("aligned_width"),
                uint("expected", *expected),
                uint("got", *got),
            ],
            RouterFault::ArraysPerGroup { expected, got } => vec![
                tag("arrays_per_group"),
                uint("expected", *expected),
                uint("got", *got),
            ],
            RouterFault::ArrayWidth { expected, got } => vec![
                tag("array_width"),
                uint("expected", *expected),
                uint("got", *got),
            ],
            RouterFault::EpochDesync { expected, got } => vec![
                tag("epoch_desync"),
                ("expected".to_string(), serde::Value::UInt(*expected)),
                ("got".to_string(), serde::Value::UInt(*got)),
            ],
            RouterFault::TimedOut { received, total } => vec![
                tag("timed_out"),
                uint("received", *received),
                uint("total", *total),
            ],
            RouterFault::ChecksumMismatch { seq } => {
                vec![tag("checksum_mismatch"), uint("seq", *seq as usize)]
            }
            RouterFault::Incomplete { received, total } => vec![
                tag("incomplete"),
                uint("received", *received),
                uint("total", *total),
            ],
            RouterFault::AtLevel {
                level,
                aggregator_id,
                fault,
            } => {
                let mut fields = vec![tag("at_level"), uint("level", *level as usize)];
                if let Some(agg) = aggregator_id {
                    fields.push(("aggregator_id".to_string(), serde::Value::UInt(*agg)));
                }
                fields.push(("fault".to_string(), fault.to_value()));
                fields
            }
        })
    }
}

impl serde::Deserialize for RouterFault {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let kind = String::from_value(v.field("kind")?)?;
        let uint =
            |name: &str| -> Result<usize, serde::Error> { usize::from_value(v.field(name)?) };
        Ok(match kind.as_str() {
            "wire" => RouterFault::Wire(String::from_value(v.field("error")?)?),
            "duplicate_router" => RouterFault::DuplicateRouter {
                first_index: uint("first_index")?,
            },
            "empty_unaligned" => RouterFault::EmptyUnaligned,
            "group_layout" => RouterFault::GroupLayout {
                arrays: uint("arrays")?,
                arrays_per_group: uint("arrays_per_group")?,
            },
            "aligned_width" => RouterFault::AlignedWidth {
                expected: uint("expected")?,
                got: uint("got")?,
            },
            "arrays_per_group" => RouterFault::ArraysPerGroup {
                expected: uint("expected")?,
                got: uint("got")?,
            },
            "array_width" => RouterFault::ArrayWidth {
                expected: uint("expected")?,
                got: uint("got")?,
            },
            "epoch_desync" => RouterFault::EpochDesync {
                expected: u64::from_value(v.field("expected")?)?,
                got: u64::from_value(v.field("got")?)?,
            },
            "timed_out" => RouterFault::TimedOut {
                received: uint("received")?,
                total: uint("total")?,
            },
            "checksum_mismatch" => RouterFault::ChecksumMismatch {
                seq: uint("seq")? as u32,
            },
            "incomplete" => RouterFault::Incomplete {
                received: uint("received")?,
                total: uint("total")?,
            },
            "at_level" => RouterFault::AtLevel {
                level: u8::try_from(uint("level")?)
                    .map_err(|_| serde::Error::new("aggregation level exceeds u8"))?,
                // The field is omitted (not null) when unknown.
                aggregator_id: match v.field("aggregator_id") {
                    Ok(f) => Some(u64::from_value(f)?),
                    Err(_) => None,
                },
                fault: Box::new(RouterFault::from_value(v.field("fault")?)?),
            },
            other => {
                return Err(serde::Error::new(format!(
                    "unknown router fault kind `{other}`"
                )))
            }
        })
    }
}

/// One excluded bundle: its position in the submitted batch, the router id
/// when the bundle decoded far enough to know it, and the fault.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Exclusion {
    /// Position of the bundle in the submitted batch.
    pub index: usize,
    /// Router id, when recoverable (wire-level rejects have none).
    pub router_id: Option<usize>,
    /// Why the bundle was excluded.
    pub fault: RouterFault,
}

/// Per-epoch ingest accounting: what was fused, what was excluded and why.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct IngestReport {
    /// Bundles submitted for the epoch (wire frames or digests).
    pub submitted: usize,
    /// Router ids fused into the epoch, in acceptance order.
    pub accepted: Vec<usize>,
    /// Everything excluded, with batch position and reason.
    pub excluded: Vec<Exclusion>,
}

impl IngestReport {
    /// Whether any bundle was excluded this epoch.
    pub fn is_degraded(&self) -> bool {
        !self.excluded.is_empty()
    }

    /// Fraction of submitted bundles that survived validation.
    pub fn accepted_fraction(&self) -> f64 {
        if self.submitted == 0 {
            0.0
        } else {
            self.accepted.len() as f64 / self.submitted as f64
        }
    }
}

/// Fatal ingest failures: nothing (or not enough) left to analyse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IngestError {
    /// The epoch contained no digests at all.
    NoDigests,
    /// Fewer than the configured quorum of bundles survived validation;
    /// the report records every exclusion.
    QuorumTooSmall {
        /// Minimum accepted bundles required to analyse.
        required: usize,
        /// The full ingest accounting for the failed epoch.
        report: IngestReport,
    },
}

impl fmt::Display for IngestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IngestError::NoDigests => write!(f, "no digests to analyse"),
            IngestError::QuorumTooSmall { required, report } => {
                write!(
                    f,
                    "only {} of {} digest bundles usable, quorum requires {required}",
                    report.accepted.len(),
                    report.submitted
                )?;
                if let Some(e) = report.excluded.first() {
                    write!(f, " (first fault, bundle {}: {})", e.index, e.fault)?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for IngestError {}

impl serde::Serialize for IngestError {
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(match self {
            IngestError::NoDigests => {
                vec![("kind".to_string(), serde::Value::Str("no_digests".into()))]
            }
            IngestError::QuorumTooSmall { required, report } => vec![
                (
                    "kind".to_string(),
                    serde::Value::Str("quorum_too_small".into()),
                ),
                ("required".to_string(), serde::Value::UInt(*required as u64)),
                ("report".to_string(), report.to_value()),
            ],
        })
    }
}

impl serde::Deserialize for IngestError {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        match String::from_value(v.field("kind")?)?.as_str() {
            "no_digests" => Ok(IngestError::NoDigests),
            "quorum_too_small" => Ok(IngestError::QuorumTooSmall {
                required: usize::from_value(v.field("required")?)?,
                report: IngestReport::from_value(v.field("report")?)?,
            }),
            other => Err(serde::Error::new(format!(
                "unknown ingest error kind `{other}`"
            ))),
        }
    }
}

/// The reference shape a digest bundle must match to be fused.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct Shape {
    aligned_bits: usize,
    arrays_per_group: usize,
    array_bits: usize,
    epoch_id: u64,
}

impl Shape {
    fn of<D: DigestShape>(d: &D) -> Shape {
        Shape {
            aligned_bits: d.aligned_bits(),
            arrays_per_group: d.arrays_per_group(),
            array_bits: if d.array_count() > 0 {
                d.array_bits(0)
            } else {
                0
            },
            epoch_id: d.epoch_id(),
        }
    }
}

/// Checks one bundle in isolation; `None` means internally coherent.
fn internal_fault<D: DigestShape>(d: &D) -> Option<RouterFault> {
    let arrays = d.array_count();
    if arrays == 0 {
        return Some(RouterFault::EmptyUnaligned);
    }
    let arrays_per_group = d.arrays_per_group();
    if arrays_per_group == 0 || !arrays.is_multiple_of(arrays_per_group) {
        return Some(RouterFault::GroupLayout {
            arrays,
            arrays_per_group,
        });
    }
    let width = d.array_bits(0);
    for i in 1..arrays {
        let got = d.array_bits(i);
        if got != width {
            return Some(RouterFault::ArrayWidth {
                expected: width,
                got,
            });
        }
    }
    None
}

/// Validates a batch of already-decoded digests against each other and
/// the quorum floor. See [`validate_batch`] for the full-control variant.
pub fn validate(
    digests: &[RouterDigest],
    min_quorum: usize,
) -> Result<(Vec<&RouterDigest>, IngestReport), IngestError> {
    validate_batch(
        digests.len(),
        digests.iter().enumerate().collect(),
        Vec::new(),
        min_quorum,
    )
}

/// Validates candidate digests (batch index, digest) plus exclusions
/// already recorded upstream (e.g. wire frames that failed to decode).
/// `submitted` is the original batch size including those prior rejects.
///
/// Generic over [`DigestShape`], so owned bundles and zero-copy
/// [`RouterDigestView`]s go through byte-for-byte identical validation.
///
/// Returns the accepted digests (in batch order) and the full accounting,
/// or a typed error when the batch is empty or the quorum is missed.
pub fn validate_batch<D: DigestShape>(
    submitted: usize,
    candidates: Vec<(usize, &D)>,
    prior_exclusions: Vec<Exclusion>,
    min_quorum: usize,
) -> Result<(Vec<&D>, IngestReport), IngestError> {
    if submitted == 0 {
        return Err(IngestError::NoDigests);
    }
    let mut excluded = prior_exclusions;

    // Majority vote over the shape of every internally coherent bundle;
    // ties break towards the earliest-seen shape.
    let mut votes: HashMap<Shape, (usize, usize)> = HashMap::new();
    for (order, (_, d)) in candidates.iter().enumerate() {
        if internal_fault(*d).is_none() {
            let entry = votes.entry(Shape::of(*d)).or_insert((0, order));
            entry.0 += 1;
        }
    }
    let consensus = votes
        .iter()
        .max_by(|(_, (ca, fa)), (_, (cb, fb))| ca.cmp(cb).then(fb.cmp(fa)))
        .map(|(shape, _)| *shape);

    let mut accepted: Vec<&D> = Vec::new();
    let mut accepted_ids: Vec<usize> = Vec::new();
    let mut first_seen: HashMap<usize, usize> = HashMap::new();
    for (index, d) in candidates {
        let fault = internal_fault(d).or_else(|| {
            let shape = Shape::of(d);
            // `consensus` exists whenever at least one bundle passed the
            // internal checks — which this one did.
            let c = consensus.expect("coherent bundle implies a consensus shape");
            if shape.aligned_bits != c.aligned_bits {
                Some(RouterFault::AlignedWidth {
                    expected: c.aligned_bits,
                    got: shape.aligned_bits,
                })
            } else if shape.arrays_per_group != c.arrays_per_group {
                Some(RouterFault::ArraysPerGroup {
                    expected: c.arrays_per_group,
                    got: shape.arrays_per_group,
                })
            } else if shape.array_bits != c.array_bits {
                Some(RouterFault::ArrayWidth {
                    expected: c.array_bits,
                    got: shape.array_bits,
                })
            } else if shape.epoch_id != c.epoch_id {
                Some(RouterFault::EpochDesync {
                    expected: c.epoch_id,
                    got: shape.epoch_id,
                })
            } else {
                first_seen
                    .get(&d.router_id())
                    .map(|&first_index| RouterFault::DuplicateRouter { first_index })
            }
        });
        match fault {
            Some(fault) => excluded.push(Exclusion {
                index,
                router_id: Some(d.router_id()),
                fault,
            }),
            None => {
                first_seen.insert(d.router_id(), index);
                accepted.push(d);
                accepted_ids.push(d.router_id());
            }
        }
    }

    excluded.sort_by_key(|e| e.index);
    let report = IngestReport {
        submitted,
        accepted: accepted_ids,
        excluded,
    };
    let required = min_quorum.max(1);
    if report.accepted.len() < required {
        return Err(IngestError::QuorumTooSmall { required, report });
    }
    Ok((accepted, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcs_bitmap::Bitmap;
    use dcs_collect::{AlignedDigest, UnalignedDigest};

    /// A minimal coherent bundle: one 64-bit aligned bitmap, 2×2 arrays
    /// of 32 bits.
    fn bundle(router_id: usize, epoch_id: u64) -> RouterDigest {
        RouterDigest {
            router_id,
            epoch_id,
            aligned: AlignedDigest {
                bitmap: Bitmap::from_indices(64, [router_id % 64]),
                packets_seen: 10,
                packets_hashed: 10,
                raw_bytes: 1000,
            },
            unaligned: UnalignedDigest {
                arrays: vec![Bitmap::from_indices(32, [1]); 4],
                arrays_per_group: 2,
                packets_seen: 10,
                packets_sampled: 10,
                raw_bytes: 1000,
            },
            artifacts: Vec::new(),
        }
    }

    #[test]
    fn clean_batch_accepts_everything() {
        let digests: Vec<_> = (0..5).map(|r| bundle(r, 3)).collect();
        let (accepted, report) = validate(&digests, 1).unwrap();
        assert_eq!(accepted.len(), 5);
        assert_eq!(report.accepted, vec![0, 1, 2, 3, 4]);
        assert!(!report.is_degraded());
        assert_eq!(report.accepted_fraction(), 1.0);
    }

    #[test]
    fn empty_batch_is_a_typed_error() {
        assert_eq!(validate(&[], 1).unwrap_err(), IngestError::NoDigests);
    }

    #[test]
    fn corrupt_first_bundle_cannot_poison_the_consensus() {
        // The first digest has a wrong aligned width; majority wins.
        let mut digests: Vec<_> = (0..4).map(|r| bundle(r, 0)).collect();
        digests[0].aligned.bitmap = Bitmap::new(128);
        let (accepted, report) = validate(&digests, 1).unwrap();
        assert_eq!(accepted.len(), 3);
        assert_eq!(report.accepted, vec![1, 2, 3]);
        assert_eq!(report.excluded.len(), 1);
        assert_eq!(report.excluded[0].index, 0);
        assert_eq!(report.excluded[0].router_id, Some(0));
        assert_eq!(
            report.excluded[0].fault,
            RouterFault::AlignedWidth {
                expected: 64,
                got: 128
            }
        );
    }

    #[test]
    fn duplicate_router_keeps_the_first_copy() {
        let mut digests: Vec<_> = (0..3).map(|r| bundle(r, 0)).collect();
        digests.push(bundle(1, 0));
        let (_, report) = validate(&digests, 1).unwrap();
        assert_eq!(report.accepted, vec![0, 1, 2]);
        assert_eq!(
            report.excluded[0].fault,
            RouterFault::DuplicateRouter { first_index: 1 }
        );
    }

    #[test]
    fn desynced_epoch_is_excluded() {
        let mut digests: Vec<_> = (0..4).map(|r| bundle(r, 7)).collect();
        digests[2].epoch_id = 6;
        let (_, report) = validate(&digests, 1).unwrap();
        assert_eq!(report.accepted, vec![0, 1, 3]);
        assert_eq!(
            report.excluded[0].fault,
            RouterFault::EpochDesync {
                expected: 7,
                got: 6
            }
        );
    }

    #[test]
    fn incoherent_group_layout_and_empty_arrays_are_flagged() {
        let mut digests: Vec<_> = (0..4).map(|r| bundle(r, 0)).collect();
        digests[1].unaligned.arrays.pop(); // 3 arrays, 2 per group
        digests[3].unaligned.arrays.clear();
        let (_, report) = validate(&digests, 1).unwrap();
        assert_eq!(report.accepted, vec![0, 2]);
        assert_eq!(
            report.excluded[0].fault,
            RouterFault::GroupLayout {
                arrays: 3,
                arrays_per_group: 2
            }
        );
        assert_eq!(report.excluded[1].fault, RouterFault::EmptyUnaligned);
    }

    #[test]
    fn quorum_floor_fails_typed() {
        let mut digests: Vec<_> = (0..4).map(|r| bundle(r, 0)).collect();
        for d in digests.iter_mut().take(3) {
            d.unaligned.arrays.clear();
        }
        let err = validate(&digests, 2).unwrap_err();
        match err {
            IngestError::QuorumTooSmall { required, report } => {
                assert_eq!(required, 2);
                assert_eq!(report.accepted, vec![3]);
                assert_eq!(report.excluded.len(), 3);
            }
            other => panic!("expected QuorumTooSmall, got {other:?}"),
        }
    }

    #[test]
    fn all_incoherent_batch_fails_without_panicking() {
        let mut digests: Vec<_> = (0..2).map(|r| bundle(r, 0)).collect();
        for d in &mut digests {
            d.unaligned.arrays.clear();
        }
        assert!(matches!(
            validate(&digests, 1),
            Err(IngestError::QuorumTooSmall { .. })
        ));
    }

    #[test]
    fn at_level_fault_wraps_kind_and_roundtrips() {
        let inner = RouterFault::TimedOut {
            received: 2,
            total: 5,
        };
        let wrapped = RouterFault::AtLevel {
            level: 1,
            aggregator_id: Some(42),
            fault: Box::new(inner.clone()),
        };
        // The metric label stays the inner fault's; the level is exposed
        // separately.
        assert_eq!(wrapped.kind(), "timed_out");
        assert_eq!(wrapped.level(), 1);
        assert_eq!(inner.level(), 0);
        assert!(wrapped.to_string().contains("at level 1"));
        assert!(wrapped.to_string().contains("aggregator 42"));

        for fault in [
            wrapped,
            RouterFault::AtLevel {
                level: 2,
                aggregator_id: None,
                fault: Box::new(RouterFault::Wire("bad magic".into())),
            },
        ] {
            let json = serde_json::to_string(&fault).unwrap();
            let back: RouterFault = serde_json::from_str(&json).unwrap();
            assert_eq!(back, fault);
        }
    }

    #[test]
    fn report_serde_roundtrip() {
        let mut digests: Vec<_> = (0..3).map(|r| bundle(r, 0)).collect();
        digests[1].epoch_id = 9;
        let (_, report) = validate(&digests, 1).unwrap();
        let json = serde_json::to_string(&report).unwrap();
        let back: IngestReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
    }
}
