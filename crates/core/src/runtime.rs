//! Continuous pipelined epoch runtime: overlaps epoch N's analysis with
//! epoch N+1's collection.
//!
//! The sequential driver (`collect → transport → analyze`, one epoch at
//! a time) leaves the analysis centre idle while the next epoch's chunks
//! trickle in, and leaves the collector idle while the centre crunches.
//! [`EpochPipeline`] decouples the two: callers [`submit`] finished
//! epochs and keep collecting; a dedicated analysis worker drains the
//! queue in submission order and parks each report in the result queue
//! for [`try_recv`]/[`recv`].
//!
//! Scratch moves by *ownership handoff*, not locking: the centre's
//! scratch pool grows one warm [`EpochScratch`] per in-flight epoch
//! (double-buffering at the default bound of 2), and the analysis body
//! never holds a lock — see `AnalysisCenter::take_scratch`.
//!
//! Backpressure is bounded and observable: at most
//! [`PipelineConfig::max_in_flight`] epochs may be queued or analyzing;
//! a [`submit`] beyond that blocks, recording the wait in the
//! `pipeline_stall_ns` histogram of the centre's registry. The
//! `epochs_in_flight` gauge tracks the live count, and
//! `epochs_in_flight_peak` its high-water mark.
//!
//! Determinism: a single worker analyses strictly in submission order
//! through the same `analyze_*` entry points as the sequential driver,
//! so pipelining changes *when* an epoch is analysed, never its result —
//! reports are byte-identical to the sequential path, and per-epoch
//! stage timings stay per-epoch (they time the analysis body, which
//! never overlaps another analysis).
//!
//! [`submit`]: EpochPipeline::submit
//! [`try_recv`]: EpochPipeline::try_recv
//! [`recv`]: EpochPipeline::recv
//! [`EpochScratch`]: crate::center::AnalysisCenter

use crate::center::AnalysisCenter;
use crate::ingest::IngestError;
use crate::monitor::RouterDigest;
use crate::report::EpochReport;
use crate::session::CollectedEpoch;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// Tuning of the pipelined runtime.
#[derive(Debug, Clone, Copy, serde::Serialize, serde::Deserialize)]
pub struct PipelineConfig {
    /// Upper bound on epochs queued or analyzing at once. `2` is classic
    /// double-buffering: analysis of epoch N overlaps collection and
    /// submission of epoch N+1. Clamped to at least 1.
    pub max_in_flight: usize,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig { max_in_flight: 2 }
    }
}

/// One epoch's worth of input, in any of the centre's ingest formats.
#[derive(Debug)]
pub enum EpochInput {
    /// Owned digest bundles (`AnalysisCenter::analyze_epoch`).
    Digests(Vec<RouterDigest>),
    /// Encoded wire frames (`AnalysisCenter::analyze_epoch_wire`).
    Frames(Vec<Vec<u8>>),
    /// A finalized transport epoch
    /// (`AnalysisCenter::analyze_epoch_collected`).
    Collected(CollectedEpoch),
    /// Encoded aggregate bundles from a regional aggregation tier
    /// (`AnalysisCenter::analyze_epoch_aggregated`).
    Aggregated(Vec<Vec<u8>>),
    /// A finalized transport epoch whose reassembled frames are
    /// aggregate bundles
    /// (`AnalysisCenter::analyze_epoch_aggregated_collected`).
    AggregatedCollected(CollectedEpoch),
    /// Test-only: panics inside the analysis body, exercising the
    /// worker's panic containment (the public ingest paths validate
    /// malformed batches into typed exclusions before anything can
    /// panic).
    #[cfg(test)]
    #[doc(hidden)]
    PanicForTest,
}

/// Why a submitted epoch produced no report.
#[derive(Debug)]
pub enum PipelineError {
    /// The batch failed validation or quorum (the sequential paths'
    /// [`IngestError`], verbatim).
    Ingest(IngestError),
    /// The analysis body panicked; the epoch's scratch was dropped and
    /// the worker kept running. Carries the panic payload when it was a
    /// string.
    Panicked(String),
}

impl std::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PipelineError::Ingest(e) => write!(f, "ingest: {e}"),
            PipelineError::Panicked(msg) => write!(f, "analysis panicked: {msg}"),
        }
    }
}

impl std::error::Error for PipelineError {}

/// A completed submission: the sequence number handed out by
/// [`EpochPipeline::submit`] plus the epoch's outcome.
pub type PipelineResult = (u64, Result<EpochReport, PipelineError>);

#[derive(Debug)]
struct State {
    /// Epochs awaiting analysis, in submission order.
    queue: VecDeque<(u64, EpochInput)>,
    /// Finished epochs awaiting retrieval, in submission order (the
    /// single worker preserves FIFO).
    results: VecDeque<PipelineResult>,
    /// Queued + analyzing. Decremented when analysis *completes*, not
    /// when the result is retrieved — retrieval-gated admission would
    /// deadlock a submit-only loop against a full pipeline.
    in_flight: usize,
    /// High-water mark of `in_flight`.
    peak_in_flight: usize,
    /// Worker gate: while set, queued epochs are not started (used to
    /// hold epochs in flight deterministically; analysis already underway
    /// is unaffected).
    paused: bool,
    /// Set once by [`EpochPipeline::drop`]; the worker drains the queue
    /// and exits.
    shutdown: bool,
    next_seq: u64,
}

#[derive(Debug)]
struct Shared {
    state: Mutex<State>,
    /// Wakes the worker: new work, unpause, shutdown.
    work: Condvar,
    /// Wakes submitters (room freed) and receivers (result ready).
    room: Condvar,
    max_in_flight: usize,
}

/// The continuously running epoch pipeline — owns an [`AnalysisCenter`]
/// and a dedicated analysis worker thread.
#[derive(Debug)]
pub struct EpochPipeline {
    center: Arc<AnalysisCenter>,
    shared: Arc<Shared>,
    worker: Option<JoinHandle<()>>,
}

impl EpochPipeline {
    /// Spawns the analysis worker around `center`.
    pub fn new(center: AnalysisCenter, cfg: PipelineConfig) -> Self {
        let center = Arc::new(center);
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                results: VecDeque::new(),
                in_flight: 0,
                peak_in_flight: 0,
                paused: false,
                shutdown: false,
                next_seq: 0,
            }),
            work: Condvar::new(),
            room: Condvar::new(),
            max_in_flight: cfg.max_in_flight.max(1),
        });
        let worker = {
            let center = Arc::clone(&center);
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("dcs-epoch-pipeline".into())
                .spawn(move || worker_loop(&center, &shared))
                .expect("spawn pipeline worker")
        };
        EpochPipeline {
            center,
            shared,
            worker: Some(worker),
        }
    }

    /// The analysis centre driving this pipeline (metrics, config).
    pub fn center(&self) -> &AnalysisCenter {
        &self.center
    }

    /// Submits one epoch for analysis, returning its sequence number.
    /// Results come back in submission order through
    /// [`Self::try_recv`]/[`Self::recv`].
    ///
    /// Blocks while [`PipelineConfig::max_in_flight`] epochs are already
    /// in flight; the wait (if any) is recorded in the centre's
    /// `pipeline_stall_ns` histogram.
    pub fn submit(&self, input: EpochInput) -> u64 {
        let mut st = lock(&self.shared.state);
        if st.in_flight >= self.shared.max_in_flight {
            let t0 = Instant::now();
            while st.in_flight >= self.shared.max_in_flight {
                st = self
                    .shared
                    .room
                    .wait(st)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
            self.center
                .metrics_registry()
                .histogram("pipeline_stall_ns", &[])
                .observe((t0.elapsed().as_nanos() as u64).max(1));
        }
        let seq = st.next_seq;
        st.next_seq += 1;
        st.queue.push_back((seq, input));
        st.in_flight += 1;
        self.publish_in_flight(&mut st);
        drop(st);
        self.shared.work.notify_one();
        seq
    }

    /// Pops the next finished epoch, if one is ready. Never blocks.
    pub fn try_recv(&self) -> Option<PipelineResult> {
        lock(&self.shared.state).results.pop_front()
    }

    /// Waits for the next finished epoch. Returns `None` once no epoch
    /// is in flight and no result is queued — the pipeline is idle.
    pub fn recv(&self) -> Option<PipelineResult> {
        let mut st = lock(&self.shared.state);
        loop {
            if let Some(r) = st.results.pop_front() {
                return Some(r);
            }
            if st.in_flight == 0 {
                return None;
            }
            st = self
                .shared
                .room
                .wait(st)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// Blocks until every submitted epoch has finished, returning their
    /// results in submission order.
    pub fn drain(&self) -> Vec<PipelineResult> {
        let mut out = Vec::new();
        while let Some(r) = self.recv() {
            out.push(r);
        }
        out
    }

    /// Holds the worker before its *next* epoch (analysis already
    /// underway completes). Submissions still enqueue — and still count
    /// against, and block on, the in-flight bound — so a paused pipeline
    /// deterministically accumulates in-flight epochs; see the transport
    /// soak's pipelined warm-up.
    pub fn pause(&self) {
        lock(&self.shared.state).paused = true;
    }

    /// Releases a [`Self::pause`], waking the worker.
    pub fn resume(&self) {
        lock(&self.shared.state).paused = false;
        self.shared.work.notify_one();
    }

    /// Epochs currently queued or analyzing.
    pub fn in_flight(&self) -> usize {
        lock(&self.shared.state).in_flight
    }

    fn publish_in_flight(&self, st: &mut State) {
        publish_in_flight(&self.center, st);
    }
}

impl Drop for EpochPipeline {
    fn drop(&mut self) {
        {
            let mut st = lock(&self.shared.state);
            st.shutdown = true;
            // A paused pipeline must still wind down.
            st.paused = false;
        }
        self.shared.work.notify_all();
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
    }
}

/// Locks `m`, bypassing poison: every critical section in this module is
/// a plain queue/counter update that cannot be left half-done by the
/// panics we guard against (which happen *outside* the lock, inside
/// `catch_unwind`).
fn lock(m: &Mutex<State>) -> std::sync::MutexGuard<'_, State> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn publish_in_flight(center: &AnalysisCenter, st: &mut State) {
    st.peak_in_flight = st.peak_in_flight.max(st.in_flight);
    let reg = center.metrics_registry();
    reg.gauge("epochs_in_flight", &[]).set(st.in_flight as u64);
    reg.gauge("epochs_in_flight_peak", &[])
        .set(st.peak_in_flight as u64);
}

fn analyze(center: &AnalysisCenter, input: &EpochInput) -> Result<EpochReport, IngestError> {
    match input {
        EpochInput::Digests(digests) => center.analyze_epoch(digests),
        EpochInput::Frames(frames) => center.analyze_epoch_wire(frames),
        EpochInput::Collected(epoch) => center.analyze_epoch_collected(epoch),
        EpochInput::Aggregated(bundles) => center.analyze_epoch_aggregated(bundles),
        EpochInput::AggregatedCollected(epoch) => center.analyze_epoch_aggregated_collected(epoch),
        #[cfg(test)]
        EpochInput::PanicForTest => panic!("injected pipeline panic"),
    }
}

fn worker_loop(center: &AnalysisCenter, shared: &Shared) {
    loop {
        let (seq, input) = {
            let mut st = lock(&shared.state);
            loop {
                if !st.paused {
                    if let Some(job) = st.queue.pop_front() {
                        break job;
                    }
                    if st.shutdown {
                        return;
                    }
                }
                st = shared
                    .work
                    .wait(st)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        };
        // Analysis runs without any pipeline lock held; a panic drops the
        // checked-out scratch and surfaces as a typed per-epoch error.
        let outcome = catch_unwind(AssertUnwindSafe(|| analyze(center, &input)))
            .map_err(|payload| {
                let msg = payload
                    .downcast_ref::<&str>()
                    .map(|s| (*s).to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "non-string panic payload".to_string());
                PipelineError::Panicked(msg)
            })
            .and_then(|r| r.map_err(PipelineError::Ingest));
        let mut st = lock(&shared.state);
        st.results.push_back((seq, outcome));
        st.in_flight -= 1;
        publish_in_flight(center, &mut st);
        center
            .metrics_registry()
            .counter("pipeline_epochs_total", &[])
            .inc();
        drop(st);
        shared.room.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::center::AnalysisConfig;
    use crate::monitor::{MonitorConfig, MonitoringPoint};
    use dcs_traffic::{gen, BackgroundConfig, SizeMix};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn make_digests(seed: u64, routers: usize) -> Vec<RouterDigest> {
        let mut r = StdRng::seed_from_u64(seed);
        let mcfg = MonitorConfig::small(7, 1 << 12, 4);
        let bg = BackgroundConfig {
            packets: 250,
            flows: 60,
            zipf_exponent: 1.0,
            size_mix: SizeMix::constant(536),
        };
        (0..routers)
            .map(|id| {
                let traffic = gen::generate_epoch(&mut r, &bg);
                let mut mp = MonitoringPoint::new(id, &mcfg);
                mp.observe_all(&traffic);
                mp.finish_epoch()
            })
            .collect()
    }

    fn center() -> AnalysisCenter {
        AnalysisCenter::new(AnalysisConfig::for_groups(16))
    }

    #[test]
    fn pipelined_reports_match_the_sequential_path() {
        let reference = center();
        let expected: Vec<EpochReport> = (0..3)
            .map(|e| reference.analyze_epoch(&make_digests(60 + e, 4)).unwrap())
            .collect();

        let pipe = EpochPipeline::new(center(), PipelineConfig::default());
        for e in 0..3u64 {
            pipe.submit(EpochInput::Digests(make_digests(60 + e, 4)));
        }
        let results = pipe.drain();
        assert_eq!(results.len(), 3);
        for ((seq, got), (e, want)) in results.into_iter().zip(expected.iter().enumerate()) {
            assert_eq!(seq, e as u64, "results must come back in submission order");
            let got = got.expect("clean epoch");
            assert_eq!(got.aligned.found, want.aligned.found);
            assert_eq!(
                got.aligned.signature_indices,
                want.aligned.signature_indices
            );
            assert_eq!(got.unaligned.alarm, want.unaligned.alarm);
            assert_eq!(
                got.unaligned.suspected_routers,
                want.unaligned.suspected_routers
            );
            assert_eq!(got.ingest, want.ingest);
        }
    }

    #[test]
    fn paused_pipeline_admits_the_in_flight_bound_and_records_backpressure() {
        let pipe = EpochPipeline::new(center(), PipelineConfig { max_in_flight: 2 });
        pipe.pause();
        pipe.submit(EpochInput::Digests(make_digests(70, 4)));
        pipe.submit(EpochInput::Digests(make_digests(71, 4)));
        assert_eq!(pipe.in_flight(), 2, "both epochs must be admitted");

        // A third submission from another thread must stall until the
        // worker resumes and frees a slot.
        std::thread::scope(|scope| {
            let submitter = scope.spawn(|| {
                pipe.submit(EpochInput::Digests(make_digests(72, 4)));
            });
            std::thread::sleep(std::time::Duration::from_millis(30));
            assert!(
                !submitter.is_finished(),
                "third submit must block at the bound"
            );
            pipe.resume();
            submitter.join().expect("submitter survives");
        });
        let results = pipe.drain();
        assert_eq!(results.len(), 3);

        let snap = pipe.center().metrics();
        assert_eq!(snap.gauge("epochs_in_flight"), Some(0));
        assert_eq!(snap.gauge("epochs_in_flight_peak"), Some(2));
        assert_eq!(snap.counter("pipeline_epochs_total"), Some(3));
        let stall = snap.histogram("pipeline_stall_ns").expect("stall recorded");
        assert!(stall.count >= 1, "blocked submit must record a stall");
    }

    #[test]
    fn ingest_errors_come_back_as_typed_results() {
        let pipe = EpochPipeline::new(center(), PipelineConfig::default());
        pipe.submit(EpochInput::Digests(Vec::new()));
        let (seq, outcome) = pipe.recv().expect("one result");
        assert_eq!(seq, 0);
        match outcome {
            Err(PipelineError::Ingest(IngestError::NoDigests)) => {}
            other => panic!("expected NoDigests, got {other:?}"),
        }
        assert!(pipe.recv().is_none(), "idle pipeline yields None");
    }

    #[test]
    fn panicked_epoch_is_contained_and_the_worker_keeps_going() {
        let pipe = EpochPipeline::new(center(), PipelineConfig::default());
        pipe.submit(EpochInput::PanicForTest);
        pipe.submit(EpochInput::Digests(make_digests(74, 4)));
        let results = pipe.drain();
        assert_eq!(results.len(), 2);
        match &results[0].1 {
            Err(PipelineError::Panicked(msg)) => {
                assert!(msg.contains("injected"), "payload carried: {msg}");
            }
            other => panic!("first epoch must surface the panic: {other:?}"),
        }
        assert!(results[1].1.is_ok(), "worker must survive the panic");
    }
}
