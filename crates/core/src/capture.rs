//! Signature-driven packet capture — the "external means" hook.
//!
//! The paper's two analysis tools deliberately stop short of producing the
//! content bytes: "Both tools can trigger external means such as packet
//! logging or intrusion detection to find the common content." This module
//! is that trigger: filters primed from an [`crate::EpochReport`] that a
//! monitoring point can run against subsequent traffic to capture exactly
//! the packets behind a detection.
//!
//! * [`SignatureCapture`] (aligned case): the report's signature indices
//!   are hash values of the content's packets; re-hash every payload and
//!   keep the ones that land on a signature index. False captures are
//!   governed by the bitmap's collision rate (`b/n` per packet).
//! * [`GroupCapture`] (unaligned case): the report names suspected flow
//!   groups; capture all packets of flows hashing into those groups at the
//!   suspected routers — the "much smaller subset of aggregated traffic"
//!   the paper proposes exchanging at finer granularity.

use dcs_collect::unaligned::flow_group;
use dcs_collect::{AlignedConfig, UnalignedConfig};
use dcs_hash::IndexHasher;
use dcs_traffic::Packet;
use std::collections::HashSet;

/// Aligned-case capture filter: payloads hashing into the detected
/// signature.
#[derive(Debug)]
pub struct SignatureCapture {
    hasher: IndexHasher,
    bitmap_bits: usize,
    hash_prefix_len: usize,
    signature: HashSet<usize>,
}

impl SignatureCapture {
    /// Primes a filter from the collector configuration (which must match
    /// the epoch the signature came from — same seed, same widths) and the
    /// signature indices of an aligned detection report.
    pub fn new(cfg: &AlignedConfig, signature_indices: &[usize]) -> Self {
        SignatureCapture {
            hasher: IndexHasher::new(cfg.seed),
            bitmap_bits: cfg.bitmap_bits,
            hash_prefix_len: cfg.hash_prefix_len,
            signature: signature_indices.iter().copied().collect(),
        }
    }

    /// Number of signature indices armed.
    pub fn len(&self) -> usize {
        self.signature.len()
    }

    /// Whether the filter is empty (captures nothing).
    pub fn is_empty(&self) -> bool {
        self.signature.is_empty()
    }

    /// Does this packet match the signature?
    pub fn matches(&self, pkt: &Packet) -> bool {
        if !pkt.has_payload() || self.signature.is_empty() {
            return false;
        }
        let len = self.hash_prefix_len.min(pkt.payload.len());
        let idx = self.hasher.index(&pkt.payload[..len], self.bitmap_bits);
        self.signature.contains(&idx)
    }

    /// Filters a packet stream, returning the captured packets.
    pub fn capture<'a>(&self, pkts: impl IntoIterator<Item = &'a Packet>) -> Vec<Packet> {
        pkts.into_iter()
            .filter(|p| self.matches(p))
            .cloned()
            .collect()
    }

    /// Expected false-capture probability per background packet: the
    /// chance a random payload hashes into the armed signature.
    pub fn false_capture_rate(&self) -> f64 {
        self.signature.len() as f64 / self.bitmap_bits as f64
    }
}

/// Unaligned-case capture filter: packets of flows in suspected groups.
#[derive(Debug)]
pub struct GroupCapture {
    router_seed: u64,
    groups: usize,
    min_payload: usize,
    suspected: HashSet<usize>,
}

impl GroupCapture {
    /// Primes a filter for one router from its collector configuration
    /// (with the per-router seed already applied) and the *local* group
    /// ids suspected at that router.
    pub fn new(cfg: &UnalignedConfig, suspected_local_groups: &[usize]) -> Self {
        GroupCapture {
            router_seed: cfg.router_seed,
            groups: cfg.groups,
            min_payload: cfg.min_payload,
            suspected: suspected_local_groups.iter().copied().collect(),
        }
    }

    /// Does this packet belong to a suspected group (and carry enough
    /// payload to have been sampled)?
    pub fn matches(&self, pkt: &Packet) -> bool {
        pkt.payload.len() >= self.min_payload
            && self
                .suspected
                .contains(&flow_group(self.router_seed, self.groups, &pkt.flow))
    }

    /// Filters a packet stream.
    pub fn capture<'a>(&self, pkts: impl IntoIterator<Item = &'a Packet>) -> Vec<Packet> {
        pkts.into_iter()
            .filter(|p| self.matches(p))
            .cloned()
            .collect()
    }

    /// Fraction of traffic captured if flows split evenly.
    pub fn expected_capture_fraction(&self) -> f64 {
        self.suspected.len() as f64 / self.groups as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcs_collect::{AlignedCollector, UnalignedCollector};
    use dcs_traffic::{ContentObject, FlowLabel, Planting};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn background(rng: &mut StdRng, n: usize) -> Vec<Packet> {
        (0..n)
            .map(|_| {
                let mut payload = vec![0u8; 536];
                rng.fill(payload.as_mut_slice());
                Packet::new(FlowLabel::random(rng), payload)
            })
            .collect()
    }

    #[test]
    fn signature_capture_recovers_content_packets() {
        let mut rng = StdRng::seed_from_u64(1);
        let cfg = AlignedConfig::small(1 << 16, 7);
        let object = ContentObject::random_with_packets(&mut rng, 20, 536);
        let plant = Planting::aligned(object, 536);

        // Epoch 1: detect (here we shortcut — collect the signature
        // directly from the collector's view of the content packets).
        let content = plant.instantiate(&mut rng);
        let mut col = AlignedCollector::new(cfg.clone());
        for p in &content {
            col.observe(p);
        }
        let signature: Vec<usize> = col.finish_epoch().bitmap.iter_ones().collect();
        assert_eq!(signature.len(), 20);

        // Epoch 2: capture from fresh traffic containing a new instance.
        let filter = SignatureCapture::new(&cfg, &signature);
        let mut traffic = background(&mut rng, 2_000);
        let instance = plant.instantiate(&mut rng);
        traffic.extend(instance.iter().cloned());
        let captured = filter.capture(&traffic);
        // Every content packet captured…
        for p in &instance {
            assert!(captured.contains(p), "content packet missed");
        }
        // …and background contamination stays near the collision rate.
        let false_caps = captured.len() - instance.len();
        let expect = filter.false_capture_rate() * 2_000.0;
        assert!(
            (false_caps as f64) <= 6.0 * expect.max(1.0),
            "{false_caps} false captures vs expected ~{expect:.2}"
        );
    }

    #[test]
    fn signature_capture_empty_and_headers() {
        let cfg = AlignedConfig::small(1 << 10, 1);
        let filter = SignatureCapture::new(&cfg, &[]);
        assert!(filter.is_empty());
        let mut rng = StdRng::seed_from_u64(2);
        let pkt = Packet::new(FlowLabel::random(&mut rng), vec![1u8; 100]);
        assert!(!filter.matches(&pkt));
        let filter = SignatureCapture::new(&cfg, &[5]);
        let ack = Packet::new(FlowLabel::random(&mut rng), Vec::new());
        assert!(!filter.matches(&ack), "header-only packets never match");
    }

    #[test]
    fn group_capture_matches_collector_placement() {
        let mut rng = StdRng::seed_from_u64(3);
        let ucfg = dcs_collect::UnalignedConfig::small(16, 1, 99);
        let collector = UnalignedCollector::new(ucfg.clone());
        let pkts = background(&mut rng, 300);
        // Suspect groups 3 and 11; the filter must capture exactly the
        // packets the collector would place there.
        let filter = GroupCapture::new(&ucfg, &[3, 11]);
        for p in &pkts {
            let expected = matches!(collector.group_of(p), 3 | 11);
            assert_eq!(filter.matches(p), expected);
        }
        assert!((filter.expected_capture_fraction() - 2.0 / 16.0).abs() < 1e-12);
    }

    #[test]
    fn group_capture_skips_small_payloads() {
        let mut rng = StdRng::seed_from_u64(4);
        let ucfg = dcs_collect::UnalignedConfig::small(4, 1, 1);
        let filter = GroupCapture::new(&ucfg, &[0, 1, 2, 3]);
        let small = Packet::new(FlowLabel::random(&mut rng), vec![0u8; 100]);
        assert!(
            !filter.matches(&small),
            "sub-minimum payloads were never sampled, so never captured"
        );
    }
}
