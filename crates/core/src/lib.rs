//! The DCS framework: monitoring points, digest shipping and the central
//! analysis module (paper Section II-B, Figure 2).
//!
//! ```text
//!   router 1 ──┐
//!   router 2 ──┤  digests (≈1000× smaller        ┌─ aligned pipeline
//!      …       ├─ than raw traffic) ──► analysis ┤   (ASID search)
//!   router m ──┘                        centre   └─ unaligned pipeline
//!                                                    (ER test + cores)
//! ```
//!
//! [`MonitoringPoint`] wraps both collectors for one router;
//! [`AnalysisCenter`] fuses the shipped digests and runs the detection
//! pipelines, reporting which routers saw common content.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aggregate;
pub mod capture;
pub mod center;
pub mod clock;
pub mod deployment;
pub mod epochs;
pub mod ingest;
pub mod monitor;
pub mod net;
pub mod report;
pub mod runtime;
pub mod session;
pub mod stages;
pub mod transport;

pub use aggregate::{
    AggregateBundle, AggregateError, Aggregator, ChildExclusion, ChildWeight, AGGREGATE_MAGIC,
};
pub use capture::{GroupCapture, SignatureCapture};
pub use center::{AnalysisCenter, AnalysisConfig, UnalignedGraphConfig};
pub use clock::{Clock, ManualClock, TickClock};
pub use deployment::{Deployment, DeploymentVerdict};
pub use epochs::{catch_probability, AlarmTracker, EpochSampler};
pub use ingest::{DigestShape, Exclusion, IngestError, IngestReport, RouterFault};
pub use monitor::{MonitorConfig, MonitoringPoint, RouterDigest, RouterDigestView};
pub use net::{
    run_center_epoch, run_monitor_epoch, CenterEpochEnd, CenterSocket, ControlError, ControlFrame,
    ImpairmentConfig, ImpairmentShim, MonitorEpochConfig, MonitorEpochEnd, MonitorSocket,
    Transport,
};
pub use report::{AlignedReport, EpochReport, EpochTimings, TransportStats, UnalignedReport};
pub use runtime::{EpochInput, EpochPipeline, PipelineConfig, PipelineError, PipelineResult};
pub use session::{
    CollectedEpoch, CollectorConfig, EpochCollector, RetransmitRequest, SessionConfig,
    StragglerPolicy,
};
pub use stages::{Stage, StageRecorder};
pub use transport::{chunk_bundle, ChunkError, ChunkFrame, DATAGRAM_SAFE_PAYLOAD};

pub use dcs_obs::{MetricsRegistry, MetricsSnapshot};

/// Convenient glob-import surface.
pub mod prelude {
    pub use crate::aggregate::{
        AggregateBundle, AggregateError, Aggregator, ChildExclusion, ChildWeight,
    };
    pub use crate::capture::{GroupCapture, SignatureCapture};
    pub use crate::center::{AnalysisCenter, AnalysisConfig};
    pub use crate::clock::{Clock, ManualClock, TickClock};
    pub use crate::deployment::{Deployment, DeploymentVerdict};
    pub use crate::epochs::{AlarmTracker, EpochSampler};
    pub use crate::ingest::{Exclusion, IngestError, IngestReport, RouterFault};
    pub use crate::monitor::{
        MonitorConfig, MonitoringPoint, RouterDigest, RouterDigestView, SketchSpec,
    };
    pub use crate::net::{
        run_center_epoch, run_monitor_epoch, CenterEpochEnd, CenterSocket, ControlFrame,
        ImpairmentConfig, ImpairmentShim, MonitorEpochConfig, MonitorEpochEnd, MonitorSocket,
        Transport,
    };
    pub use crate::report::{
        AlignedReport, EpochReport, EpochTimings, SketchReport, TransportStats, UnalignedReport,
    };
    pub use crate::runtime::{
        EpochInput, EpochPipeline, PipelineConfig, PipelineError, PipelineResult,
    };
    pub use crate::session::{
        CollectedEpoch, CollectorConfig, EpochCollector, RetransmitRequest, SessionConfig,
        StragglerPolicy,
    };
    pub use crate::stages::{Stage, StageRecorder};
    pub use crate::transport::{chunk_bundle, ChunkError, ChunkFrame, DATAGRAM_SAFE_PAYLOAD};
    pub use dcs_aligned::{refined_detect, SearchConfig};
    pub use dcs_collect::{AlignedConfig, UnalignedConfig};
    pub use dcs_obs::{MetricsRegistry, MetricsSnapshot};
    pub use dcs_traffic::{BackgroundConfig, ContentObject, FlowLabel, Packet, Planting};
    pub use dcs_unaligned::{CoreFindConfig, ErTestConfig};
}
