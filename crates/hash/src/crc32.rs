//! CRC-32 (IEEE 802.3, reflected polynomial `0xEDB8_8320`), implemented
//! in-repo so the transport layer needs no external dependency.
//!
//! The digest transport envelope (`dcs-core::transport`) trails every
//! chunk frame and every collector checkpoint with this checksum, so
//! truncation and bit-flips on the measurement plane are *detectable*
//! rather than silently decoded into garbage. CRC-32 is an
//! error-detection code, not a MAC: it defends against line noise, not
//! adversaries — the structural validation in `dcs-collect::wire` and
//! `dcs-core::ingest` remains the backstop either way.
//!
//! The table is computed at compile time (`const fn`), one entry per byte
//! value; [`Crc32`] streams over split buffers, [`crc32`] is the one-shot
//! convenience.

/// The reflected IEEE 802.3 generator polynomial.
pub const POLY: u32 = 0xEDB8_8320;

/// Byte-indexed remainder table for [`POLY`], built at compile time.
const TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut byte = 0usize;
    while byte < 256 {
        let mut crc = byte as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[byte] = crc;
        byte += 1;
    }
    table
};

/// Streaming CRC-32 over arbitrarily split input.
#[derive(Debug, Clone, Copy)]
pub struct Crc32 {
    state: u32,
}

impl Crc32 {
    /// Starts a fresh checksum.
    pub fn new() -> Self {
        Crc32 { state: !0 }
    }

    /// Folds `bytes` into the checksum; chainable.
    pub fn update(&mut self, bytes: &[u8]) -> &mut Self {
        let mut crc = self.state;
        for &b in bytes {
            crc = (crc >> 8) ^ TABLE[((crc ^ u32::from(b)) & 0xFF) as usize];
        }
        self.state = crc;
        self
    }

    /// The checksum of everything folded in so far.
    pub fn finish(&self) -> u32 {
        !self.state
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Crc32::new()
    }
}

/// One-shot CRC-32 of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(bytes);
    c.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The classic check value for CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn streaming_matches_one_shot() {
        let data: Vec<u8> = (0..=255u8).cycle().take(4096).collect();
        let whole = crc32(&data);
        for split in [0usize, 1, 7, 255, 4095, 4096] {
            let mut c = Crc32::new();
            c.update(&data[..split]).update(&data[split..]);
            assert_eq!(c.finish(), whole, "split at {split} diverged");
        }
    }

    #[test]
    fn single_bit_flips_always_detected() {
        // CRC-32 detects every single-bit error within its span.
        let data = b"epoch digest chunk payload".to_vec();
        let reference = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut mangled = data.clone();
                mangled[byte] ^= 1 << bit;
                assert_ne!(crc32(&mangled), reference, "flip {byte}:{bit} undetected");
            }
        }
    }

    #[test]
    fn truncation_detected() {
        let data = b"some frame body with a checksum appended".to_vec();
        let reference = crc32(&data);
        for cut in 0..data.len() {
            assert_ne!(
                crc32(&data[..cut]),
                reference,
                "truncation at {cut} undetected"
            );
        }
    }
}
