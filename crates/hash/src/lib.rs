//! Hashing substrate for the DCS system.
//!
//! The data-collection modules (paper Sections III-A and IV-A) hash packet
//! payload fragments into bitmap indices and flow labels into group indices.
//! The analysis only requires the indices to look uniform and independent,
//! so any good 64-bit hash works; we provide, from scratch:
//!
//! * [`rabin`] — Rabin fingerprints over GF(2) (the paper's citation \[22\])
//!   with table-driven byte updates and O(1) rolling windows, plus the
//!   polynomial arithmetic and irreducibility testing needed to pick safe
//!   moduli;
//! * [`fnv`] — FNV-1a, a minimal seedable byte hash;
//! * [`crc32()`] — CRC-32/IEEE for wire-frame integrity trailers;
//! * [`mix`] — SplitMix64 finalisation and multiply-shift universal hashing;
//! * [`IndexHasher`] — the composition used by the collectors: fingerprint
//!   a payload fragment, finalise with a per-epoch seed, and reduce to a
//!   bitmap index without modulo bias.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod crc32;
pub mod fnv;
pub mod gf2;
pub mod mix;
pub mod rabin;

#[cfg(test)]
mod proptests;

pub use crc32::{crc32, Crc32};
pub use fnv::Fnv1a;
pub use rabin::{RabinFingerprinter, RollingRabin, DEFAULT_POLY};

use mix::{reduce, splitmix64};

/// Hashes byte strings to bitmap indices: the collectors' `hash(...)` in
/// Figures 3, 8 and 9 of the paper.
///
/// A Rabin fingerprint of the bytes is finalised with a seeded SplitMix64
/// step (so different monitoring epochs and different arrays use
/// independent-looking hash functions) and reduced to `[0, n)` using the
/// unbiased multiply-high trick.
#[derive(Debug, Clone)]
pub struct IndexHasher {
    fp: RabinFingerprinter,
    seed: u64,
}

impl IndexHasher {
    /// Creates a hasher with the default irreducible polynomial and the
    /// given seed.
    pub fn new(seed: u64) -> Self {
        IndexHasher {
            fp: RabinFingerprinter::new(DEFAULT_POLY),
            seed,
        }
    }

    /// 64-bit hash of `bytes`.
    pub fn hash64(&self, bytes: &[u8]) -> u64 {
        splitmix64(self.fp.fingerprint(bytes) ^ self.seed)
    }

    /// Index of `bytes` in a table of `n` slots.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn index(&self, bytes: &[u8], n: usize) -> usize {
        assert!(n > 0, "index: empty range");
        reduce(self.hash64(bytes), n as u64) as usize
    }

    /// The seed this hasher was built with.
    pub fn seed(&self) -> u64 {
        self.seed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn different_seeds_decorrelate() {
        let a = IndexHasher::new(1);
        let b = IndexHasher::new(2);
        let data = b"GET /index.html HTTP/1.1";
        assert_ne!(a.hash64(data), b.hash64(data));
    }

    #[test]
    fn index_in_range_and_deterministic() {
        let h = IndexHasher::new(42);
        for n in [1usize, 2, 7, 1024, 4_000_000] {
            let i = h.index(b"payload bytes", n);
            assert!(i < n);
            assert_eq!(i, h.index(b"payload bytes", n));
        }
    }

    #[test]
    fn index_distribution_roughly_uniform() {
        // 10,000 distinct payloads into 16 buckets: each bucket should get
        // 625 +- a generous slack.
        let h = IndexHasher::new(7);
        let mut counts = [0usize; 16];
        for i in 0..10_000u32 {
            counts[h.index(&i.to_le_bytes(), 16)] += 1;
        }
        for &c in &counts {
            assert!((425..=825).contains(&c), "bucket count {c} out of range");
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn zero_range_panics() {
        IndexHasher::new(0).index(b"x", 0);
    }
}
