//! Property-based tests for the hashing substrate.

use crate::gf2::{mulmod, sqrmod, x_pow_mod};
use crate::rabin::{RabinFingerprinter, RollingRabin, DEFAULT_POLY};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn gf2_mul_commutative_associative(a in any::<u64>(), b in any::<u64>(), c in any::<u64>()) {
        let m = DEFAULT_POLY;
        prop_assert_eq!(mulmod(a, b, m), mulmod(b, a, m));
        prop_assert_eq!(
            mulmod(mulmod(a, b, m), c, m),
            mulmod(a, mulmod(b, c, m), m)
        );
    }

    #[test]
    fn gf2_distributive(a in any::<u64>(), b in any::<u64>(), c in any::<u64>()) {
        let m = DEFAULT_POLY;
        prop_assert_eq!(
            mulmod(a, b ^ c, m),
            mulmod(a, b, m) ^ mulmod(a, c, m)
        );
    }

    #[test]
    fn gf2_square_matches_mul(a in any::<u64>()) {
        prop_assert_eq!(sqrmod(a, DEFAULT_POLY), mulmod(a, a, DEFAULT_POLY));
    }

    #[test]
    fn x_pow_additive(e1 in 0u64..10_000, e2 in 0u64..10_000) {
        // x^(e1+e2) = x^e1 · x^e2 in the field.
        let m = DEFAULT_POLY;
        prop_assert_eq!(
            x_pow_mod(e1 + e2, m),
            mulmod(x_pow_mod(e1, m), x_pow_mod(e2, m), m)
        );
    }

    #[test]
    fn rolling_equals_scratch(
        data in proptest::collection::vec(any::<u8>(), 1..200),
        window in 1usize..32,
    ) {
        prop_assume!(window <= data.len());
        let fp = RabinFingerprinter::new(DEFAULT_POLY);
        let rolled = RollingRabin::windows_of(DEFAULT_POLY, window, &data);
        prop_assert_eq!(rolled.len(), data.len() - window + 1);
        for (i, &r) in rolled.iter().enumerate() {
            prop_assert_eq!(r, fp.window_fingerprint(&data[i..i + window]));
        }
    }

    #[test]
    fn fingerprint_prefix_extension_is_consistent(
        a in proptest::collection::vec(any::<u8>(), 0..64),
        b in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        // fp(a ++ b) must equal continuing fp(a) with b's bytes.
        let fp = RabinFingerprinter::new(DEFAULT_POLY);
        let mut state = fp.fingerprint(&a);
        for &byte in &b {
            state = fp.append_byte(state, byte);
        }
        let mut ab = a.clone();
        ab.extend_from_slice(&b);
        prop_assert_eq!(state, fp.fingerprint(&ab));
    }

    #[test]
    fn index_hasher_range(bytes in proptest::collection::vec(any::<u8>(), 0..64), n in 1usize..1_000_000) {
        let h = crate::IndexHasher::new(5);
        prop_assert!(h.index(&bytes, n) < n);
    }
}
