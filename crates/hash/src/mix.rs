//! Integer finalisers and range reduction.
//!
//! [`splitmix64`] is the finaliser from Vigna's SplitMix64 generator: a
//! bijective avalanche mix used to decorrelate fingerprints from seeds.
//! [`MultiplyShift`] is the classic 2-universal multiply-shift family,
//! offered as a cheaper alternative where provable universality matters.
//! [`reduce`] maps a 64-bit hash onto `[0, n)` with the multiply-high trick
//! (Lemire), avoiding both modulo cost and modulo bias.

/// SplitMix64 avalanche finaliser (bijective on `u64`).
#[inline]
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Maps a uniform 64-bit value to `[0, n)` without modulo bias
/// (multiply-high / fixed-point multiply).
#[inline]
pub fn reduce(hash: u64, n: u64) -> u64 {
    ((u128::from(hash) * u128::from(n)) >> 64) as u64
}

/// 2-universal multiply-shift hash family for 64-bit keys.
///
/// `h(x) = (a·x + b) >> (64 − out_bits)` with odd `a`; pairwise collision
/// probability ≤ 2^(1−out_bits) over the random choice of `(a, b)`.
#[derive(Debug, Clone, Copy)]
pub struct MultiplyShift {
    a: u64,
    b: u64,
    out_bits: u32,
}

impl MultiplyShift {
    /// Creates a family member from a seed, producing `out_bits`-bit values.
    ///
    /// # Panics
    /// Panics unless `1 <= out_bits <= 64`.
    pub fn new(seed: u64, out_bits: u32) -> Self {
        assert!((1..=64).contains(&out_bits), "out_bits must be in 1..=64");
        let a = splitmix64(seed) | 1; // multiplier must be odd
        let b = splitmix64(seed.wrapping_add(0xABCD_EF01));
        MultiplyShift { a, b, out_bits }
    }

    /// Hashes a 64-bit key to `out_bits` bits.
    #[inline]
    pub fn hash(&self, x: u64) -> u64 {
        self.a.wrapping_mul(x).wrapping_add(self.b) >> (64 - self.out_bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_injective_on_sample() {
        use std::collections::HashSet;
        let mut seen = HashSet::new();
        for i in 0..10_000u64 {
            assert!(seen.insert(splitmix64(i)));
        }
    }

    #[test]
    fn reduce_stays_in_range_and_covers() {
        let n = 10u64;
        let mut hit = [false; 10];
        for i in 0..1_000u64 {
            let r = reduce(splitmix64(i), n);
            assert!(r < n);
            hit[r as usize] = true;
        }
        assert!(hit.iter().all(|&h| h), "not all buckets reachable");
    }

    #[test]
    fn reduce_edge_values() {
        assert_eq!(reduce(0, 100), 0);
        assert_eq!(reduce(u64::MAX, 100), 99);
        assert_eq!(reduce(12345, 1), 0);
    }

    #[test]
    fn multiply_shift_range() {
        let h = MultiplyShift::new(3, 10);
        for x in 0..1000u64 {
            assert!(h.hash(x) < 1024);
        }
    }

    #[test]
    fn multiply_shift_collision_rate_reasonable() {
        // 1,000 keys into 2^16 buckets: expected collisions ~ C(1000,2)/65536
        // ≈ 7.6; assert we are within a loose factor.
        let h = MultiplyShift::new(99, 16);
        let mut buckets = std::collections::HashMap::new();
        let mut collisions = 0u32;
        for x in 0..1000u64 {
            let v = h.hash(splitmix64(x));
            collisions += *buckets.entry(v).and_modify(|c| *c += 1).or_insert(0u32);
        }
        assert!(collisions < 60, "too many collisions: {collisions}");
    }

    #[test]
    #[should_panic(expected = "out_bits")]
    fn zero_out_bits_panics() {
        MultiplyShift::new(0, 0);
    }
}
