//! Polynomial arithmetic over GF(2) for Rabin fingerprinting.
//!
//! A degree-64 modulus is represented by its low 64 coefficient bits with
//! the `x^64` term implicit; residues are full `u64` values (degree < 64).
//! This is all that Rabin fingerprinting needs: multiplication and
//! exponentiation of residues modulo an *irreducible* degree-64 polynomial,
//! plus Rabin's irreducibility test so moduli can be validated or generated
//! from a seed.

/// Multiplies two residues modulo the degree-64 polynomial `x^64 + modulus`.
///
/// Shift-and-xor schoolbook multiplication with reduction folded into every
/// doubling step; constant 64 iterations.
#[inline]
pub fn mulmod(mut a: u64, b: u64, modulus: u64) -> u64 {
    let mut acc = 0u64;
    for i in 0..64 {
        if b >> i & 1 == 1 {
            acc ^= a;
        }
        let carry = a >> 63;
        a <<= 1;
        if carry == 1 {
            a ^= modulus;
        }
    }
    acc
}

/// Squares a residue modulo `x^64 + modulus`.
#[inline]
pub fn sqrmod(a: u64, modulus: u64) -> u64 {
    mulmod(a, a, modulus)
}

/// Computes `x^e mod (x^64 + modulus)` where `e` counts in *bit* positions,
/// i.e. the residue of the monomial of degree `e`.
pub fn x_pow_mod(e: u64, modulus: u64) -> u64 {
    // Square-and-multiply on the monomial x (residue 0b10).
    let mut result = 1u64; // x^0
    let mut base = 2u64; // x^1
    let mut e = e;
    while e > 0 {
        if e & 1 == 1 {
            result = mulmod(result, base, modulus);
        }
        base = sqrmod(base, modulus);
        e >>= 1;
    }
    result
}

/// GCD of two polynomials over GF(2), represented with all coefficient bits
/// explicit (so inputs must have degree < 64, or be encoded in `u128`).
fn poly_gcd(mut a: u128, mut b: u128) -> u128 {
    while b != 0 {
        let r = poly_rem(a, b);
        a = b;
        b = r;
    }
    a
}

/// Remainder of polynomial division over GF(2) (explicit representation).
fn poly_rem(mut a: u128, b: u128) -> u128 {
    debug_assert!(b != 0);
    let db = 127 - b.leading_zeros() as i32;
    loop {
        if a == 0 {
            return 0;
        }
        let da = 127 - a.leading_zeros() as i32;
        if da < db {
            return a;
        }
        a ^= b << (da - db);
    }
}

/// Degree-64 polynomial `x^64 + low` in explicit `u128` form.
#[inline]
fn explicit64(low: u64) -> u128 {
    (1u128 << 64) | low as u128
}

/// Rabin's irreducibility test for the degree-64 polynomial `x^64 + low`.
///
/// `f` of degree `n` is irreducible over GF(2) iff
/// `x^(2^n) ≡ x (mod f)` and `gcd(x^(2^(n/q)) − x, f) = 1` for every prime
/// divisor `q` of `n`. For n = 64 the only prime divisor is 2, so we check
/// the chain of repeated squarings at step 32.
pub fn is_irreducible64(low: u64) -> bool {
    // t_k = x^(2^k) mod f, computed by repeated squaring of the residue.
    let mut t = 2u64; // x^(2^0) = x
    let mut t32 = 0u64;
    for k in 1..=64 {
        t = sqrmod(t, low);
        if k == 32 {
            t32 = t;
        }
    }
    if t != 2 {
        return false; // x^(2^64) != x  =>  reducible
    }
    // gcd(x^(2^32) - x, f) must be 1.
    let diff = (t32 ^ 2) as u128;
    if diff == 0 {
        return false; // f divides x^(2^32) - x: factors of degree <= 32
    }
    poly_gcd(explicit64(low), diff) == 1
}

/// Finds an irreducible degree-64 polynomial by scanning candidates derived
/// from a seed counter. Expected ~64 attempts (density of irreducibles of
/// degree n is ~1/n).
pub fn find_irreducible64(seed: u64) -> u64 {
    let mut s = seed;
    loop {
        s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        // Force the constant term so x never divides the polynomial.
        let cand = s | 1;
        if is_irreducible64(cand) {
            return cand;
        }
    }
}

/// Generic irreducibility test for small-degree polynomials (explicit
/// representation, degree <= 63), by trial division. Used to validate the
/// fast test against ground truth in tests.
pub fn is_irreducible_explicit(f: u128) -> bool {
    let deg = 127 - f.leading_zeros() as i32;
    if deg <= 0 {
        return false;
    }
    if deg == 1 {
        return true;
    }
    if f & 1 == 0 {
        return false; // divisible by x
    }
    // Trial divide by all polynomials of degree 1..=deg/2.
    for d in 1..=(deg / 2) {
        for g in (1u128 << d)..(1u128 << (d + 1)) {
            if poly_rem(f, g) == 0 {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mulmod_identity_and_commutativity() {
        let m = 0x1Bu64;
        assert_eq!(mulmod(1, 0xDEADBEEF, m), 0xDEADBEEF);
        assert_eq!(mulmod(0xDEADBEEF, 1, m), 0xDEADBEEF);
        assert_eq!(mulmod(5, 9, m), mulmod(9, 5, m));
        assert_eq!(mulmod(0, 0xFFFF, m), 0);
    }

    #[test]
    fn mulmod_small_case_by_hand() {
        // (x+1)(x+1) = x^2 + 1 over GF(2); no reduction needed.
        assert_eq!(mulmod(0b11, 0b11, 0x1B), 0b101);
        // x^63 * x = x^64 = modulus (mod x^64 + modulus).
        assert_eq!(mulmod(1 << 63, 2, 0x1B), 0x1B);
    }

    #[test]
    fn mulmod_distributes_over_xor() {
        let m = 0x247F43CB7u64 | 1;
        let (a, b, c) = (0x1234_5678_9ABC_DEF0u64, 0x0F0F, 0xFEDC_BA98);
        assert_eq!(
            mulmod(a, b ^ c, m),
            mulmod(a, b, m) ^ mulmod(a, c, m),
            "GF(2)[x] multiplication must be linear"
        );
    }

    #[test]
    fn x_pow_mod_matches_repeated_multiplication() {
        let m = 0x1Bu64;
        let mut acc = 1u64;
        for e in 0..200u64 {
            assert_eq!(x_pow_mod(e, m), acc, "mismatch at exponent {e}");
            acc = mulmod(acc, 2, m);
        }
    }

    #[test]
    fn default_poly_is_irreducible() {
        // x^64 + x^4 + x^3 + x + 1
        assert!(is_irreducible64(0x1B));
    }

    #[test]
    fn reducible_polys_rejected() {
        // x^64 is divisible by x (constant term 0).
        assert!(!is_irreducible64(0));
        // x^64 + 1 = (x+1)^64 over GF(2).
        assert!(!is_irreducible64(1));
        // x^64 + x^2 = x^2 (x^62 + 1): constant term 0.
        assert!(!is_irreducible64(0b100));
    }

    #[test]
    fn find_irreducible64_terminates_and_validates() {
        for seed in 0..4u64 {
            let p = find_irreducible64(seed);
            assert!(is_irreducible64(p), "candidate {p:#x} not irreducible");
            assert_eq!(p & 1, 1);
        }
    }

    #[test]
    fn explicit_test_agrees_on_small_degrees() {
        // Count irreducibles of each degree and compare with the known
        // necklace counts: degree 2: 1, 3: 2, 4: 3, 5: 6, 6: 9, 7: 18.
        let expected = [1usize, 2, 3, 6, 9, 18];
        for (i, &want) in expected.iter().enumerate() {
            let d = i as i32 + 2;
            let mut count = 0;
            for f in (1u128 << d)..(1u128 << (d + 1)) {
                if is_irreducible_explicit(f) {
                    count += 1;
                }
            }
            assert_eq!(count, want, "wrong irreducible count at degree {d}");
        }
    }

    #[test]
    fn poly_rem_examples() {
        // (x^3 + x + 1) mod (x + 1): evaluate at x=1 -> 1+1+1 = 1.
        assert_eq!(poly_rem(0b1011, 0b11), 1);
        // x^2 mod x = 0.
        assert_eq!(poly_rem(0b100, 0b10), 0);
    }
}
