//! FNV-1a: a tiny, seedable byte hash.
//!
//! Used where fingerprint linearity is unnecessary and a one-multiply-per-
//! byte hash is enough (e.g. hashing 13-byte flow labels into groups, paper
//! Figure 9). Seeding replaces the standard offset basis, giving a cheap
//! family of functions.

const FNV_OFFSET: u64 = 0xcbf29ce484222325;
const FNV_PRIME: u64 = 0x100000001b3;

/// Seedable FNV-1a hasher.
#[derive(Debug, Clone, Copy)]
pub struct Fnv1a {
    state: u64,
}

impl Fnv1a {
    /// Standard FNV-1a offset basis.
    pub fn new() -> Self {
        Fnv1a { state: FNV_OFFSET }
    }

    /// Seeded variant: the seed is folded into the offset basis.
    pub fn with_seed(seed: u64) -> Self {
        Fnv1a {
            state: FNV_OFFSET ^ seed.wrapping_mul(FNV_PRIME),
        }
    }

    /// Absorbs bytes.
    #[inline]
    pub fn update(&mut self, bytes: &[u8]) -> &mut Self {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
        self
    }

    /// Current 64-bit digest.
    #[inline]
    pub fn finish(&self) -> u64 {
        self.state
    }

    /// One-shot hash of `bytes`.
    pub fn hash(bytes: &[u8]) -> u64 {
        let mut h = Fnv1a::new();
        h.update(bytes);
        h.finish()
    }

    /// One-shot seeded hash of `bytes`.
    pub fn hash_seeded(seed: u64, bytes: &[u8]) -> u64 {
        let mut h = Fnv1a::with_seed(seed);
        h.update(bytes);
        h.finish()
    }
}

impl Default for Fnv1a {
    fn default() -> Self {
        Fnv1a::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard FNV-1a 64 test vectors.
        assert_eq!(Fnv1a::hash(b""), 0xcbf29ce484222325);
        assert_eq!(Fnv1a::hash(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(Fnv1a::hash(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn incremental_equals_oneshot() {
        let mut h = Fnv1a::new();
        h.update(b"foo").update(b"bar");
        assert_eq!(h.finish(), Fnv1a::hash(b"foobar"));
    }

    #[test]
    fn seeds_change_output() {
        assert_ne!(Fnv1a::hash_seeded(1, b"x"), Fnv1a::hash_seeded(2, b"x"));
        assert_eq!(Fnv1a::hash_seeded(7, b"x"), Fnv1a::hash_seeded(7, b"x"));
    }
}
