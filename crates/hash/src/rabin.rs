//! Rabin fingerprints over GF(2) with table-driven updates and rolling
//! windows.
//!
//! A message `b_0 b_1 … b_{k-1}` is interpreted as a polynomial over GF(2)
//! and reduced modulo a fixed irreducible degree-64 polynomial. Fingerprints
//! are linear, so equal byte strings always collide and distinct strings
//! collide with probability ~`k/2^64` — exactly the property the paper's
//! content-signature bitmaps rely on. The rolling variant supports the
//! future-work direction of similar-content detection (shingling every
//! window of a payload, Section VI).

use crate::gf2::{is_irreducible64, mulmod, x_pow_mod};
use std::collections::VecDeque;

/// Default modulus: `x^64 + x^4 + x^3 + x + 1`, irreducible over GF(2)
/// (validated by `gf2::is_irreducible64` in tests).
pub const DEFAULT_POLY: u64 = 0x1B;

/// Table-driven Rabin fingerprinter for whole byte strings.
#[derive(Clone)]
pub struct RabinFingerprinter {
    poly: u64,
    /// `table[t]` = residue of `t(x) · x^64` modulo the modulus, used to fold
    /// the 8 bits that overflow on each byte shift back into the state.
    table: Box<[u64; 256]>,
}

impl std::fmt::Debug for RabinFingerprinter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "RabinFingerprinter {{ poly: {:#x} }}", self.poly)
    }
}

impl RabinFingerprinter {
    /// Creates a fingerprinter for the modulus `x^64 + poly`.
    ///
    /// # Panics
    /// Panics if the modulus is not irreducible (a reducible modulus gives
    /// structured collisions, silently ruining detection accuracy).
    pub fn new(poly: u64) -> Self {
        assert!(
            is_irreducible64(poly),
            "Rabin modulus x^64 + {poly:#x} is not irreducible"
        );
        let mut table = Box::new([0u64; 256]);
        // Residue of x^64.
        let x64 = x_pow_mod(64, poly);
        for t in 0u64..256 {
            table[t as usize] = mulmod(t, x64, poly);
        }
        RabinFingerprinter { poly, table }
    }

    /// The low bits of the modulus.
    pub fn poly(&self) -> u64 {
        self.poly
    }

    /// Appends one byte to a fingerprint state.
    #[inline]
    pub fn append_byte(&self, f: u64, byte: u8) -> u64 {
        let top = (f >> 56) as usize;
        (f << 8 | u64::from(byte)) ^ self.table[top]
    }

    /// Fingerprint of a whole message.
    ///
    /// The state starts at 1 so messages differing only in leading zero
    /// bytes do not collide.
    pub fn fingerprint(&self, bytes: &[u8]) -> u64 {
        let mut f = 1u64;
        for &b in bytes {
            f = self.append_byte(f, b);
        }
        f
    }

    /// Fingerprint of a fixed-length window, with zero initial state (the
    /// convention of [`RollingRabin`], where the window length is fixed and
    /// the leading-zero ambiguity cannot arise). Use this to compare against
    /// rolling fingerprints.
    pub fn window_fingerprint(&self, bytes: &[u8]) -> u64 {
        let mut f = 0u64;
        for &b in bytes {
            f = self.append_byte(f, b);
        }
        f
    }
}

/// O(1)-per-byte rolling Rabin fingerprint over a fixed-size window.
pub struct RollingRabin {
    fp: RabinFingerprinter,
    window: usize,
    /// `out_table[b]` = residue of `b(x) · x^(8·window)`: the contribution of
    /// the byte about to leave the window.
    out_table: Box<[u64; 256]>,
    buf: VecDeque<u8>,
    f: u64,
}

impl std::fmt::Debug for RollingRabin {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "RollingRabin {{ poly: {:#x}, window: {}, filled: {} }}",
            self.fp.poly,
            self.window,
            self.buf.len()
        )
    }
}

impl RollingRabin {
    /// Creates a rolling fingerprinter over windows of `window` bytes.
    ///
    /// # Panics
    /// Panics if `window == 0` or the modulus is not irreducible.
    pub fn new(poly: u64, window: usize) -> Self {
        assert!(window > 0, "rolling window must be non-empty");
        let fp = RabinFingerprinter::new(poly);
        let xw = x_pow_mod(8 * window as u64, poly);
        let mut out_table = Box::new([0u64; 256]);
        for b in 0u64..256 {
            out_table[b as usize] = mulmod(b, xw, poly);
        }
        RollingRabin {
            fp,
            window,
            out_table,
            buf: VecDeque::with_capacity(window),
            f: 0,
        }
    }

    /// Window length in bytes.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Pushes a byte; returns the fingerprint of the current window once at
    /// least `window` bytes have been seen, `None` while filling.
    #[inline]
    pub fn push(&mut self, byte: u8) -> Option<u64> {
        self.f = self.fp.append_byte(self.f, byte);
        self.buf.push_back(byte);
        if self.buf.len() > self.window {
            let old = self.buf.pop_front().expect("buffer longer than window");
            self.f ^= self.out_table[old as usize];
        }
        (self.buf.len() == self.window).then_some(self.f)
    }

    /// Clears the window.
    pub fn reset(&mut self) {
        self.buf.clear();
        self.f = 0;
    }

    /// Fingerprints of every full window of `bytes`, from scratch.
    pub fn windows_of(poly: u64, window: usize, bytes: &[u8]) -> Vec<u64> {
        let mut roll = RollingRabin::new(poly, window);
        bytes.iter().filter_map(|&b| roll.push(b)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_messages_equal_fingerprints() {
        let fp = RabinFingerprinter::new(DEFAULT_POLY);
        assert_eq!(
            fp.fingerprint(b"hello world"),
            fp.fingerprint(b"hello world")
        );
    }

    #[test]
    fn distinct_messages_differ() {
        let fp = RabinFingerprinter::new(DEFAULT_POLY);
        assert_ne!(fp.fingerprint(b"hello"), fp.fingerprint(b"hellp"));
        assert_ne!(fp.fingerprint(b""), fp.fingerprint(b"\0"));
        assert_ne!(fp.fingerprint(b"\0a"), fp.fingerprint(b"a"));
    }

    #[test]
    fn append_is_linear_in_message_xor() {
        // Rabin fingerprints with the same length are affine: for equal
        // lengths, fp(a) ^ fp(b) == fp0(a ^ b) where fp0 is the zero-init
        // window fingerprint of the bytewise XOR.
        let fp = RabinFingerprinter::new(DEFAULT_POLY);
        let a = b"abcdefgh";
        let b = b"12345678";
        let x: Vec<u8> = a.iter().zip(b).map(|(p, q)| p ^ q).collect();
        assert_eq!(
            fp.fingerprint(a) ^ fp.fingerprint(b),
            fp.window_fingerprint(&x)
        );
    }

    #[test]
    #[should_panic(expected = "not irreducible")]
    fn reducible_modulus_rejected() {
        RabinFingerprinter::new(0);
    }

    #[test]
    fn rolling_matches_from_scratch() {
        let data = b"the quick brown fox jumps over the lazy dog";
        let fp = RabinFingerprinter::new(DEFAULT_POLY);
        let w = 8;
        let rolled = RollingRabin::windows_of(DEFAULT_POLY, w, data);
        assert_eq!(rolled.len(), data.len() - w + 1);
        for (i, &r) in rolled.iter().enumerate() {
            assert_eq!(
                r,
                fp.window_fingerprint(&data[i..i + w]),
                "window {i} mismatch"
            );
        }
    }

    #[test]
    fn rolling_detects_shared_window() {
        // Two messages sharing a 16-byte substring at different offsets
        // produce at least one identical window fingerprint — the unaligned
        // case's core mechanism.
        let common = b"COMMON-CONTENT!!";
        let mut m1 = b"prefix-A-".to_vec();
        m1.extend_from_slice(common);
        let mut m2 = b"other-longer-prefix-".to_vec();
        m2.extend_from_slice(common);
        let f1 = RollingRabin::windows_of(DEFAULT_POLY, 16, &m1);
        let f2 = RollingRabin::windows_of(DEFAULT_POLY, 16, &m2);
        assert!(
            f1.iter().any(|f| f2.contains(f)),
            "shared window not detected"
        );
    }

    #[test]
    fn rolling_none_while_filling() {
        let mut r = RollingRabin::new(DEFAULT_POLY, 4);
        assert_eq!(r.push(1), None);
        assert_eq!(r.push(2), None);
        assert_eq!(r.push(3), None);
        assert!(r.push(4).is_some());
        assert!(r.push(5).is_some());
        r.reset();
        assert_eq!(r.push(6), None);
    }

    #[test]
    fn collision_rate_is_tiny() {
        // 20k random-ish short messages: no collisions expected at 64 bits.
        use std::collections::HashSet;
        let fp = RabinFingerprinter::new(DEFAULT_POLY);
        let mut seen = HashSet::new();
        for i in 0..20_000u64 {
            let msg = i.wrapping_mul(0x9E3779B97F4A7C15).to_le_bytes();
            assert!(seen.insert(fp.fingerprint(&msg)), "collision at {i}");
        }
    }

    #[test]
    fn custom_irreducible_modulus_works() {
        let poly = crate::gf2::find_irreducible64(12345);
        let fp = RabinFingerprinter::new(poly);
        assert_ne!(fp.fingerprint(b"a"), fp.fingerprint(b"b"));
    }
}
