//! Variable-packet-size support for the aligned case (paper Section II-D:
//! "Our algorithms can be extended to cover the more general case of
//! variable packet-sizes, but we make this assumption for simplicity of
//! presentation").
//!
//! The aligned matrix construction needs every instance of a content to
//! produce the same column indices, which holds only when all instances
//! use the same packet size. The extension is exactly what the paper
//! hints at: partition traffic by payload-size *class* and run one
//! aligned collector per class. A content transmitted at 536-byte
//! payloads correlates in the 536 class no matter what unrelated traffic
//! does; analysis runs per class independently.

use crate::aligned::{AlignedCollector, AlignedConfig, AlignedDigest};
use dcs_traffic::Packet;

/// Payload-size classes, following the empirical Internet mix the paper
/// cites (Fraleigh et al.): small packets are skipped (no room for
/// meaningful content), mid-size covers the 576-byte MSS regime, large
/// covers the 1500-byte MTU regime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum SizeClass {
    /// Payloads in `[64, 1000)` bytes — the 576-MTU regime.
    Mid,
    /// Payloads of at least 1000 bytes — the 1500-MTU regime.
    Large,
}

impl SizeClass {
    /// Classifies a payload length; `None` for payloads too small to
    /// carry meaningful content (mirroring the unaligned collector's
    /// minimum-payload rule).
    pub fn of(payload_len: usize) -> Option<SizeClass> {
        match payload_len {
            0..=63 => None,
            64..=999 => Some(SizeClass::Mid),
            _ => Some(SizeClass::Large),
        }
    }

    /// All classes, in a fixed order.
    pub const ALL: [SizeClass; 2] = [SizeClass::Mid, SizeClass::Large];
}

/// A bank of aligned collectors, one per payload-size class.
#[derive(Debug)]
pub struct SizedAlignedCollector {
    collectors: [AlignedCollector; 2],
}

/// The per-class digest bundle.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct SizedAlignedDigest {
    /// Digests in [`SizeClass::ALL`] order.
    pub digests: [AlignedDigest; 2],
}

impl SizedAlignedDigest {
    /// The digest of one class.
    pub fn class(&self, class: SizeClass) -> &AlignedDigest {
        match class {
            SizeClass::Mid => &self.digests[0],
            SizeClass::Large => &self.digests[1],
        }
    }

    /// Total encoded bytes across classes.
    pub fn encoded_len(&self) -> usize {
        self.digests.iter().map(|d| d.bitmap.encoded_len()).sum()
    }
}

impl SizedAlignedCollector {
    /// Creates the bank; every class shares the configuration (and hence
    /// the epoch seed) but fills its own bitmap.
    pub fn new(cfg: AlignedConfig) -> Self {
        SizedAlignedCollector {
            collectors: [
                AlignedCollector::new(cfg.clone()),
                AlignedCollector::new(cfg),
            ],
        }
    }

    /// Routes one packet to its class collector (small payloads are
    /// counted nowhere, exactly like the unaligned minimum-payload rule).
    pub fn observe(&mut self, pkt: &Packet) {
        if let Some(class) = SizeClass::of(pkt.payload.len()) {
            let idx = match class {
                SizeClass::Mid => 0,
                SizeClass::Large => 1,
            };
            self.collectors[idx].observe(pkt);
        }
    }

    /// Closes the epoch for every class.
    pub fn finish_epoch(&mut self) -> SizedAlignedDigest {
        let [a, b] = &mut self.collectors;
        SizedAlignedDigest {
            digests: [a.finish_epoch(), b.finish_epoch()],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcs_traffic::{ContentObject, FlowLabel, Packet, Planting};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn packet(rng: &mut StdRng, len: usize) -> Packet {
        let mut payload = vec![0u8; len];
        rng.fill(payload.as_mut_slice());
        Packet::new(FlowLabel::random(rng), payload)
    }

    #[test]
    fn classification() {
        assert_eq!(SizeClass::of(0), None);
        assert_eq!(SizeClass::of(63), None);
        assert_eq!(SizeClass::of(64), Some(SizeClass::Mid));
        assert_eq!(SizeClass::of(536), Some(SizeClass::Mid));
        assert_eq!(SizeClass::of(999), Some(SizeClass::Mid));
        assert_eq!(SizeClass::of(1000), Some(SizeClass::Large));
        assert_eq!(SizeClass::of(1460), Some(SizeClass::Large));
    }

    #[test]
    fn classes_fill_independently() {
        let mut r = StdRng::seed_from_u64(1);
        let mut c = SizedAlignedCollector::new(AlignedConfig::small(1 << 12, 7));
        for _ in 0..50 {
            c.observe(&packet(&mut r, 536));
        }
        for _ in 0..30 {
            c.observe(&packet(&mut r, 1460));
        }
        for _ in 0..20 {
            c.observe(&packet(&mut r, 40)); // dropped
        }
        let d = c.finish_epoch();
        assert_eq!(d.class(SizeClass::Mid).packets_hashed, 50);
        assert_eq!(d.class(SizeClass::Large).packets_hashed, 30);
    }

    #[test]
    fn cross_size_content_correlates_within_its_class() {
        // The same logical object transmitted at 536B payloads by some
        // hosts and 1460B payloads by others: each class correlates
        // internally; the classes never mix columns.
        let mut r = StdRng::seed_from_u64(2);
        let object = ContentObject::random(&mut r, 1460 * 12); // both sizes divide... use packetize directly
        let mid = Planting::aligned(object.clone(), 536);
        let large = Planting::aligned(object, 1460);
        let mk = |plant: &Planting, r: &mut StdRng| {
            let mut c = SizedAlignedCollector::new(AlignedConfig::small(1 << 14, 7));
            for p in plant.instantiate(r) {
                c.observe(&p);
            }
            c.finish_epoch()
        };
        let (m1, m2) = (mk(&mid, &mut r), mk(&mid, &mut r));
        let (l1, l2) = (mk(&large, &mut r), mk(&large, &mut r));
        // Same class ⇒ full overlap.
        let mid_common = m1
            .class(SizeClass::Mid)
            .bitmap
            .common_ones(&m2.class(SizeClass::Mid).bitmap);
        assert!(mid_common >= 30, "mid-class instances must correlate");
        let large_common = l1
            .class(SizeClass::Large)
            .bitmap
            .common_ones(&l2.class(SizeClass::Large).bitmap);
        assert!(large_common >= 10, "large-class instances must correlate");
        // Cross class ⇒ the 536-size instance never lands in the Large
        // class at all.
        assert_eq!(m1.class(SizeClass::Large).packets_hashed, 0);
    }

    #[test]
    fn mixed_size_transmission_still_detected_per_class() {
        // Even when ONE instance mixes sizes (e.g. path-MTU differences
        // mid-flow), the per-class sub-streams still match other
        // instances chunked the same way.
        let mut r = StdRng::seed_from_u64(3);
        let chunks: Vec<Vec<u8>> = (0..20)
            .map(|i| {
                let len = if i % 2 == 0 { 536 } else { 1460 };
                let mut v = vec![0u8; len];
                r.fill(v.as_mut_slice());
                v
            })
            .collect();
        let mk = |r: &mut StdRng| {
            let mut c = SizedAlignedCollector::new(AlignedConfig::small(1 << 14, 7));
            let flow = FlowLabel::random(r);
            for ch in &chunks {
                c.observe(&Packet::new(flow, ch.clone()));
            }
            c.finish_epoch()
        };
        let (d1, d2) = (mk(&mut r), mk(&mut r));
        for class in SizeClass::ALL {
            let common = d1.class(class).bitmap.common_ones(&d2.class(class).bitmap);
            assert_eq!(common, 10, "class {class:?} should share its 10 chunks");
        }
    }
}
