//! Unaligned-case collector (paper Figures 8 and 9): offset sampling plus
//! flow splitting.

use dcs_bitmap::{Bitmap, RowMatrix};
use dcs_hash::mix::{reduce, splitmix64};
use dcs_hash::{Fnv1a, IndexHasher};
use dcs_traffic::Packet;

/// Configuration of an unaligned-case collector.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct UnalignedConfig {
    /// Number of flow-split groups (paper: 128 per OC-48 collector).
    pub groups: usize,
    /// Arrays (offsets) per group — the paper's k = 10.
    pub arrays_per_group: usize,
    /// Bits per array (paper: 1,024).
    pub array_bits: usize,
    /// Offset modulus: the payload size the deployment targets (paper:
    /// 536-byte MSS). Offsets are drawn in `[0, payload_modulus −
    /// fragment_len]` so a fragment never runs off a minimum-size packet.
    pub payload_modulus: usize,
    /// Packets with payloads shorter than this are skipped (paper: 500).
    pub min_payload: usize,
    /// Packets with payloads at least this long use the secondary offset
    /// set too — "for packets 1000 bytes and above, we will use 20
    /// different offsets, two offsets per array".
    pub large_payload: usize,
    /// Bytes hashed per sampled fragment.
    pub fragment_len: usize,
    /// Epoch-wide *content-hash* seed; must match across monitoring points
    /// (same fragment ⇒ same index everywhere).
    pub seed: u64,
    /// Per-router seed for offset choice and flow splitting; should differ
    /// across routers ("each router picks a set of k random offsets").
    pub router_seed: u64,
}

impl Default for UnalignedConfig {
    fn default() -> Self {
        UnalignedConfig {
            groups: 128,
            arrays_per_group: 10,
            array_bits: 1024,
            payload_modulus: 536,
            min_payload: 500,
            large_payload: 1000,
            fragment_len: 16,
            seed: 0,
            router_seed: 0,
        }
    }
}

impl UnalignedConfig {
    /// A scaled-down configuration for tests.
    pub fn small(groups: usize, seed: u64, router_seed: u64) -> Self {
        UnalignedConfig {
            groups,
            seed,
            router_seed,
            ..UnalignedConfig::default()
        }
    }

    fn validate(&self) {
        assert!(self.groups > 0, "need at least one group");
        assert!(self.arrays_per_group > 0, "need at least one array");
        assert!(self.array_bits > 0, "arrays must be non-empty");
        assert!(self.fragment_len > 0, "fragments must be non-empty");
        assert!(
            self.fragment_len <= self.payload_modulus.min(self.min_payload),
            "fragment must fit inside both the offset modulus and the \
             smallest sampled payload"
        );
    }

    /// Largest usable offset + 1: offsets are drawn in
    /// `[0, min(payload_modulus, min_payload) − fragment_len]` so a
    /// fragment never runs past the smallest payload the collector samples
    /// (the paper draws offsets mod 536 while admitting 500-byte payloads;
    /// restricting the range preserves the matching semantics — offsets
    /// still live in the mod-536 residue space — while staying in bounds).
    fn offset_span(&self) -> usize {
        self.payload_modulus.min(self.min_payload) - self.fragment_len + 1
    }
}

/// The digest shipped at the end of an epoch: `groups × arrays_per_group`
/// small bitmaps plus accounting.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct UnalignedDigest {
    /// Arrays in group-major order: group `g`, offset-array `a` lives at
    /// `g * arrays_per_group + a`.
    pub arrays: Vec<Bitmap>,
    /// Arrays per group (rows per group when fused into a matrix).
    pub arrays_per_group: usize,
    /// Packets observed.
    pub packets_seen: u64,
    /// Packets sampled (payload ≥ min_payload).
    pub packets_sampled: u64,
    /// Raw traffic volume summarised, in wire bytes.
    pub raw_bytes: u64,
}

impl UnalignedDigest {
    /// Number of groups.
    pub fn groups(&self) -> usize {
        self.arrays.len() / self.arrays_per_group
    }

    /// Encoded size of all arrays in bytes.
    pub fn encoded_len(&self) -> usize {
        self.arrays.iter().map(Bitmap::encoded_len).sum()
    }

    /// Raw bytes per digest byte.
    pub fn compression_ratio(&self) -> f64 {
        self.raw_bytes as f64 / self.encoded_len() as f64
    }

    /// Stacks the arrays into a row matrix (rows in group-major order),
    /// the format the analysis centre fuses vertically across routers.
    pub fn to_rows(&self) -> RowMatrix {
        let ncols = self.arrays.first().map_or(0, Bitmap::len);
        RowMatrix::from_bitmaps(ncols, self.arrays.iter())
    }
}

/// The flow-splitting hash (Figure 9): which of `groups` groups a flow
/// lands in at the router salted with `router_seed`. Exposed so follow-up
/// tooling (e.g. capture filters primed from a detection report) can
/// reproduce a collector's flow→group mapping without the collector.
///
/// # Panics
/// Panics if `groups == 0`.
pub fn flow_group(router_seed: u64, groups: usize, flow: &dcs_traffic::FlowLabel) -> usize {
    assert!(groups > 0, "need at least one group");
    let h = Fnv1a::hash_seeded(router_seed, &flow.to_bytes());
    reduce(h, groups as u64) as usize
}

/// Streaming collector for the unaligned case.
#[derive(Debug)]
pub struct UnalignedCollector {
    cfg: UnalignedConfig,
    hasher: IndexHasher,
    /// Primary offset for each array (used for every sampled packet).
    offsets_primary: Vec<usize>,
    /// Secondary offset for each array (added for large packets).
    offsets_secondary: Vec<usize>,
    arrays: Vec<Bitmap>,
    packets_seen: u64,
    packets_sampled: u64,
    raw_bytes: u64,
}

impl UnalignedCollector {
    /// Creates a collector; offsets are fixed for the epoch from
    /// `router_seed` ("chosen beforehand and fixed for a measurement
    /// epoch").
    pub fn new(cfg: UnalignedConfig) -> Self {
        cfg.validate();
        let hasher = IndexHasher::new(cfg.seed);
        let k = cfg.arrays_per_group;
        let span = cfg.offset_span() as u64;
        let offset_at = |i: u64| -> usize {
            reduce(splitmix64(cfg.router_seed ^ (0xA11CE + i)), span) as usize
        };
        let offsets_primary: Vec<usize> = (0..k as u64).map(offset_at).collect();
        let offsets_secondary: Vec<usize> = (k as u64..2 * k as u64).map(offset_at).collect();
        let arrays = vec![Bitmap::new(cfg.array_bits); cfg.groups * k];
        UnalignedCollector {
            cfg,
            hasher,
            offsets_primary,
            offsets_secondary,
            arrays,
            packets_seen: 0,
            packets_sampled: 0,
            raw_bytes: 0,
        }
    }

    /// The offsets in use (primary set), for inspection and tests.
    pub fn offsets(&self) -> (&[usize], &[usize]) {
        (&self.offsets_primary, &self.offsets_secondary)
    }

    /// Flow-split group of a flow label (Figure 9's
    /// `hash(pkt.flow_label)`), salted with the router seed.
    pub fn group_of(&self, pkt: &Packet) -> usize {
        flow_group(self.cfg.router_seed, self.cfg.groups, &pkt.flow)
    }

    /// Processes one packet (Figures 8 + 9 update algorithm).
    pub fn observe(&mut self, pkt: &Packet) {
        self.packets_seen += 1;
        self.raw_bytes += pkt.wire_len() as u64;
        let payload = &pkt.payload;
        if payload.len() < self.cfg.min_payload {
            return;
        }
        self.packets_sampled += 1;
        let group = self.group_of(pkt);
        let k = self.cfg.arrays_per_group;
        let base = group * k;
        let large = payload.len() >= self.cfg.large_payload;
        for a in 0..k {
            let row = &mut self.arrays[base + a];
            let off = self.offsets_primary[a];
            let frag = &payload[off..off + self.cfg.fragment_len];
            let idx = self.hasher.index(frag, self.cfg.array_bits);
            row.set(idx);
            if large {
                let off2 = self.offsets_secondary[a];
                let end = off2 + self.cfg.fragment_len;
                if end <= payload.len() {
                    let frag2 = &payload[off2..end];
                    let idx2 = self.hasher.index(frag2, self.cfg.array_bits);
                    row.set(idx2);
                }
            }
        }
    }

    /// Mean fill ratio across all arrays (epoch-closure signal).
    pub fn mean_fill(&self) -> f64 {
        let total: u32 = self.arrays.iter().map(Bitmap::weight).sum();
        total as f64 / (self.arrays.len() * self.cfg.array_bits) as f64
    }

    /// Closes the epoch and resets.
    pub fn finish_epoch(&mut self) -> UnalignedDigest {
        let mut arrays =
            vec![Bitmap::new(self.cfg.array_bits); self.cfg.groups * self.cfg.arrays_per_group];
        std::mem::swap(&mut arrays, &mut self.arrays);
        let d = UnalignedDigest {
            arrays,
            arrays_per_group: self.cfg.arrays_per_group,
            packets_seen: self.packets_seen,
            packets_sampled: self.packets_sampled,
            raw_bytes: self.raw_bytes,
        };
        self.packets_seen = 0;
        self.packets_sampled = 0;
        self.raw_bytes = 0;
        d
    }

    /// The configuration in use.
    pub fn config(&self) -> &UnalignedConfig {
        &self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcs_traffic::{ContentObject, FlowLabel, Planting};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn packet(rng: &mut StdRng, len: usize) -> Packet {
        let mut payload = vec![0u8; len];
        rng.fill(payload.as_mut_slice());
        Packet::new(FlowLabel::random(rng), payload)
    }

    #[test]
    fn small_packets_skipped() {
        let mut r = StdRng::seed_from_u64(1);
        let mut c = UnalignedCollector::new(UnalignedConfig::small(4, 1, 1));
        c.observe(&packet(&mut r, 200));
        c.observe(&packet(&mut r, 499));
        let d = c.finish_epoch();
        assert_eq!(d.packets_seen, 2);
        assert_eq!(d.packets_sampled, 0);
        assert!(d.arrays.iter().all(|a| a.weight() == 0));
    }

    #[test]
    fn sampled_packet_touches_every_array_of_its_group_only() {
        let mut r = StdRng::seed_from_u64(2);
        let mut c = UnalignedCollector::new(UnalignedConfig::small(8, 1, 1));
        let p = packet(&mut r, 536);
        let g = c.group_of(&p);
        c.observe(&p);
        let d = c.finish_epoch();
        let k = d.arrays_per_group;
        for (i, a) in d.arrays.iter().enumerate() {
            if i / k == g {
                assert_eq!(a.weight(), 1, "array {i} in the packet's group");
            } else {
                assert_eq!(a.weight(), 0, "array {i} outside the group");
            }
        }
    }

    #[test]
    fn large_packets_use_second_offset() {
        let mut r = StdRng::seed_from_u64(3);
        let mut c = UnalignedCollector::new(UnalignedConfig::small(1, 1, 1));
        let p = packet(&mut r, 1460);
        c.observe(&p);
        let d = c.finish_epoch();
        // With 1 group, each array should have up to 2 bits (collisions
        // possible but unlikely across all 10 arrays).
        let twos = d.arrays.iter().filter(|a| a.weight() == 2).count();
        assert!(twos >= 8, "most arrays should carry two bits, got {twos}");
    }

    #[test]
    fn same_flow_same_group() {
        let mut r = StdRng::seed_from_u64(4);
        let c = UnalignedCollector::new(UnalignedConfig::small(16, 1, 99));
        let flow = FlowLabel::random(&mut r);
        let p1 = Packet::new(flow, vec![1u8; 536]);
        let p2 = Packet::new(flow, vec![2u8; 536]);
        assert_eq!(c.group_of(&p1), c.group_of(&p2));
    }

    #[test]
    fn router_seeds_give_different_offsets() {
        let c1 = UnalignedCollector::new(UnalignedConfig::small(1, 1, 100));
        let c2 = UnalignedCollector::new(UnalignedConfig::small(1, 1, 200));
        assert_ne!(c1.offsets().0, c2.offsets().0);
        // And offsets never let a fragment overrun a minimum-size payload.
        let cfg = c1.config();
        let limit = cfg.payload_modulus.min(cfg.min_payload);
        for &o in c1.offsets().0.iter().chain(c1.offsets().1) {
            assert!(o + cfg.fragment_len <= limit);
        }
    }

    #[test]
    fn matching_offsets_produce_matching_bits() {
        // Two routers observe the same content with prefixes l1, l2. If
        // some (primary) offset pair satisfies a − b ≡ l1 − l2 (mod 536),
        // the corresponding arrays share ~content-length common ones.
        // Engineer the match: same router_seed ⇒ same offsets, and equal
        // prefixes ⇒ the match happens at i == j.
        let mut r = StdRng::seed_from_u64(5);
        let obj = ContentObject::random(&mut r, 536 * 40);
        let mut prefix = vec![0u8; 123];
        r.fill(prefix.as_mut_slice());

        let mk_packets = |rng: &mut StdRng, prefix: &[u8]| {
            let flow = FlowLabel::random(rng);
            obj.packetize(prefix, 536)
                .into_iter()
                .map(|pl| Packet::new(flow, pl))
                .collect::<Vec<_>>()
        };
        let pk1 = mk_packets(&mut r, &prefix);
        let pk2 = mk_packets(&mut r, &prefix);

        let mut c1 = UnalignedCollector::new(UnalignedConfig::small(1, 7, 42));
        let mut c2 = UnalignedCollector::new(UnalignedConfig::small(1, 7, 42));
        for p in &pk1 {
            c1.observe(p);
        }
        for p in &pk2 {
            c2.observe(p);
        }
        let (d1, d2) = (c1.finish_epoch(), c2.finish_epoch());
        // Array a of router 1 vs array a of router 2: same offset, same
        // prefix ⇒ identical fragments ⇒ identical indices.
        for a in 0..d1.arrays_per_group {
            let common = d1.arrays[a].common_ones(&d2.arrays[a]);
            assert!(
                common as usize >= 35,
                "array {a}: only {common} common ones for 40 matching packets"
            );
        }
    }

    #[test]
    fn mismatched_prefixes_rarely_match() {
        // Different prefixes and different offsets: expected common ones
        // per array pair is the hypergeometric background (~w²/1024).
        let mut r = StdRng::seed_from_u64(6);
        let obj = ContentObject::random(&mut r, 536 * 40);
        let plant = Planting::unaligned(obj, 536);
        let mut c1 = UnalignedCollector::new(UnalignedConfig::small(1, 7, 1));
        let mut c2 = UnalignedCollector::new(UnalignedConfig::small(1, 7, 2));
        for p in plant.instantiate(&mut r) {
            c1.observe(&p);
        }
        for p in plant.instantiate(&mut r) {
            c2.observe(&p);
        }
        let (d1, d2) = (c1.finish_epoch(), c2.finish_epoch());
        // Count array pairs with near-total overlap; with 100 pairs and a
        // ~17% per-pair match probability, 0 matches happen often — just
        // assert the *typical* pair shares few ones.
        let mut matched_pairs = 0;
        for a in &d1.arrays {
            for b in &d2.arrays {
                if a.common_ones(b) as usize >= 35 {
                    matched_pairs += 1;
                }
            }
        }
        assert!(
            matched_pairs <= 30,
            "too many matched pairs: {matched_pairs}"
        );
    }

    #[test]
    fn digest_rows_and_compression() {
        let mut r = StdRng::seed_from_u64(7);
        let mut c = UnalignedCollector::new(UnalignedConfig::small(4, 1, 1));
        for _ in 0..200 {
            c.observe(&packet(&mut r, 536));
        }
        let d = c.finish_epoch();
        assert_eq!(d.groups(), 4);
        let rows = d.to_rows();
        assert_eq!(rows.nrows(), 40);
        assert_eq!(rows.ncols(), 1024);
        assert!(d.compression_ratio() > 1.0);
        assert_eq!(d.raw_bytes, 200 * 576);
    }

    #[test]
    #[should_panic(expected = "fragment must fit")]
    fn invalid_config_rejected() {
        let cfg = UnalignedConfig {
            min_payload: 8,
            fragment_len: 16,
            ..UnalignedConfig::default()
        };
        UnalignedCollector::new(cfg);
    }
}
