//! Typed, capped, CRC-covered **sidecar artifacts**.
//!
//! The epoch refactor that lets a bundle carry more than one summary:
//! a DCSR (and DCSG) bundle ends in an optional *artifact section* —
//! a short list of `(kind, payload)` pairs, each individually
//! CRC-guarded — so companion summaries (the `dcs-sketch` heavy-hitter
//! sketch today, anything else tomorrow) ride beside the bitmap digest
//! without another wire-format revision. Design rules:
//!
//! * **Typed** — `kind` is a FourCC (`b"DCSS"` for sketches); decoders
//!   skip kinds they don't understand but keep them opaque, so an old
//!   centre forwards a new monitor's artifacts unharmed.
//! * **Capped** — at most [`MAX_ARTIFACTS`] per section and
//!   [`MAX_ARTIFACT_PAYLOAD`] bytes per payload, and every declared
//!   length is checked against the remaining buffer *before* any
//!   allocation (the same discipline as the digest decoders).
//! * **CRC-covered** — each artifact carries a CRC-32 over
//!   `kind ‖ len ‖ payload`; a flipped bit in one artifact drops that
//!   bundle at the ingest boundary instead of feeding a corrupt sketch
//!   into fusion.
//!
//! ```text
//! count u16 | count × ( kind u32 | len u32 | payload | crc32 u32 )
//! ```
//!
//! An empty section encodes as **zero bytes** (the bundle encoder emits
//! the pre-artifact frame version), so bundles without artifacts are
//! byte-identical to the previous format — the compatibility invariant
//! the existing transport and checkpoint byte-identity tests pin.

use crate::wire::WireError;
use bytes::{Buf, BufMut, BytesMut};
use dcs_hash::crc32;

/// Maximum artifacts per section.
pub const MAX_ARTIFACTS: usize = 8;
/// Maximum payload bytes per artifact (a sketch at the decoder cap is
/// ~1 MiB of entries; digests themselves run far larger).
pub const MAX_ARTIFACT_PAYLOAD: usize = 1 << 20;
/// FourCC of the `dcs-sketch` heavy-hitter sketch payload.
pub const ARTIFACT_KIND_SKETCH: u32 = u32::from_le_bytes(*b"DCSS");

/// Bytes each artifact costs beyond its payload (kind + len + crc).
const PER_ARTIFACT_OVERHEAD: usize = 12;

/// One typed sidecar artifact.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Artifact {
    /// FourCC describing the payload (e.g. [`ARTIFACT_KIND_SKETCH`]).
    pub kind: u32,
    /// Opaque payload bytes (the kind's own codec applies).
    pub payload: Vec<u8>,
}

impl Artifact {
    /// A sketch artifact around an encoded `DCSS` payload.
    pub fn sketch(payload: Vec<u8>) -> Self {
        Artifact {
            kind: ARTIFACT_KIND_SKETCH,
            payload,
        }
    }

    /// Wire bytes this artifact adds to a section.
    pub fn encoded_len(&self) -> usize {
        PER_ARTIFACT_OVERHEAD + self.payload.len()
    }
}

/// Wire bytes of a whole artifact section (0 when `artifacts` is empty
/// — empty sections are elided entirely).
pub fn section_len(artifacts: &[Artifact]) -> usize {
    if artifacts.is_empty() {
        0
    } else {
        2 + artifacts.iter().map(Artifact::encoded_len).sum::<usize>()
    }
}

// The vendored `bytes` stand-in has no u16 accessors; the count field
// stays u16 on the wire via these local helpers.
fn put_u16_le(buf: &mut BytesMut, v: u16) {
    buf.put_slice(&v.to_le_bytes());
}

fn get_u16_le(buf: &mut &[u8]) -> u16 {
    let v = u16::from_le_bytes([buf[0], buf[1]]);
    buf.advance(2);
    v
}

fn artifact_crc(kind: u32, payload: &[u8]) -> u32 {
    let mut covered = Vec::with_capacity(8 + payload.len());
    covered.extend_from_slice(&kind.to_le_bytes());
    covered.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    covered.extend_from_slice(payload);
    crc32(&covered)
}

/// Appends an artifact section to `buf`. Empty sections emit nothing.
///
/// # Errors
/// [`WireError::TooLarge`] when a cap is exceeded — a frame must never
/// ship a section its own decoder would reject.
pub fn encode_section(artifacts: &[Artifact], buf: &mut BytesMut) -> Result<(), WireError> {
    if artifacts.is_empty() {
        return Ok(());
    }
    if artifacts.len() > MAX_ARTIFACTS {
        return Err(WireError::TooLarge("too many artifacts"));
    }
    put_u16_le(buf, artifacts.len() as u16);
    for a in artifacts {
        if a.payload.len() > MAX_ARTIFACT_PAYLOAD {
            return Err(WireError::TooLarge("artifact payload"));
        }
        buf.put_u32_le(a.kind);
        buf.put_u32_le(a.payload.len() as u32);
        buf.put_slice(&a.payload);
        buf.put_u32_le(artifact_crc(a.kind, &a.payload));
    }
    Ok(())
}

/// Decodes an artifact section from the front of `buf`, advancing it.
/// Call only when the containing frame says a section is present; an
/// empty `buf` is a missing count, i.e. [`WireError::Truncated`].
pub fn decode_section(buf: &mut &[u8]) -> Result<Vec<Artifact>, WireError> {
    if buf.len() < 2 {
        return Err(WireError::Truncated);
    }
    let count = get_u16_le(buf) as usize;
    if count == 0 || count > MAX_ARTIFACTS {
        return Err(WireError::Malformed("artifact count"));
    }
    // Caps are tiny, but keep the discipline: the declared count must
    // fit the remaining bytes before reserving the output vector.
    if count.saturating_mul(PER_ARTIFACT_OVERHEAD) > buf.len() {
        return Err(WireError::Truncated);
    }
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        if buf.len() < 8 {
            return Err(WireError::Truncated);
        }
        let kind = buf.get_u32_le();
        let len = buf.get_u32_le() as usize;
        if len > MAX_ARTIFACT_PAYLOAD {
            return Err(WireError::Malformed("artifact payload length"));
        }
        if buf.len() < len + 4 {
            return Err(WireError::Truncated);
        }
        let payload = buf[..len].to_vec();
        buf.advance(len);
        let crc = buf.get_u32_le();
        if crc != artifact_crc(kind, &payload) {
            return Err(WireError::Malformed("artifact checksum"));
        }
        out.push(Artifact { kind, payload });
    }
    Ok(out)
}

/// Borrowing variant of [`decode_section`] for the zero-copy view
/// path: payloads stay slices into the frame.
pub fn decode_section_views<'a>(buf: &mut &'a [u8]) -> Result<Vec<(u32, &'a [u8])>, WireError> {
    if buf.len() < 2 {
        return Err(WireError::Truncated);
    }
    let count = get_u16_le(buf) as usize;
    if count == 0 || count > MAX_ARTIFACTS {
        return Err(WireError::Malformed("artifact count"));
    }
    if count.saturating_mul(PER_ARTIFACT_OVERHEAD) > buf.len() {
        return Err(WireError::Truncated);
    }
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        if buf.len() < 8 {
            return Err(WireError::Truncated);
        }
        let kind = buf.get_u32_le();
        let len = buf.get_u32_le() as usize;
        if len > MAX_ARTIFACT_PAYLOAD {
            return Err(WireError::Malformed("artifact payload length"));
        }
        if buf.len() < len + 4 {
            return Err(WireError::Truncated);
        }
        let payload = &buf[..len];
        buf.advance(len);
        let crc = buf.get_u32_le();
        if crc != artifact_crc(kind, payload) {
            return Err(WireError::Malformed("artifact checksum"));
        }
        out.push((kind, payload));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Artifact> {
        vec![
            Artifact::sketch(vec![1, 2, 3, 4, 5]),
            Artifact {
                kind: u32::from_le_bytes(*b"XOPQ"),
                payload: Vec::new(),
            },
        ]
    }

    #[test]
    fn round_trip_owned_and_view() {
        let arts = sample();
        let mut buf = BytesMut::new();
        encode_section(&arts, &mut buf).expect("encodes");
        assert_eq!(buf.len(), section_len(&arts));

        let mut rd: &[u8] = &buf;
        let got = decode_section(&mut rd).expect("decodes");
        assert_eq!(got, arts);
        assert!(rd.is_empty(), "decoder must consume the whole section");

        let mut rd: &[u8] = &buf;
        let views = decode_section_views(&mut rd).expect("view decodes");
        assert_eq!(views.len(), 2);
        assert_eq!(views[0].0, ARTIFACT_KIND_SKETCH);
        assert_eq!(views[0].1, &arts[0].payload[..]);
    }

    #[test]
    fn empty_section_is_zero_bytes() {
        let mut buf = BytesMut::new();
        encode_section(&[], &mut buf).expect("empty encodes");
        assert!(buf.is_empty());
        assert_eq!(section_len(&[]), 0);
    }

    #[test]
    fn unknown_kinds_survive_round_trips_opaquely() {
        let arts = vec![Artifact {
            kind: 0xDEAD_BEEF,
            payload: vec![9; 100],
        }];
        let mut buf = BytesMut::new();
        encode_section(&arts, &mut buf).expect("encodes");
        let mut rd: &[u8] = &buf;
        assert_eq!(decode_section(&mut rd).expect("decodes"), arts);
    }

    #[test]
    fn corruption_is_caught_by_the_per_artifact_crc() {
        let arts = sample();
        let mut buf = BytesMut::new();
        encode_section(&arts, &mut buf).expect("encodes");
        for pos in 2..buf.len() {
            let mut bad = buf.to_vec();
            bad[pos] ^= 0x40;
            let mut rd: &[u8] = &bad;
            assert!(
                decode_section(&mut rd).is_err(),
                "flip at {pos} went unnoticed"
            );
        }
    }

    #[test]
    fn caps_are_enforced_on_both_sides() {
        let many: Vec<Artifact> = (0..MAX_ARTIFACTS + 1)
            .map(|i| Artifact {
                kind: i as u32,
                payload: Vec::new(),
            })
            .collect();
        let mut buf = BytesMut::new();
        assert_eq!(
            encode_section(&many, &mut buf),
            Err(WireError::TooLarge("too many artifacts"))
        );

        let huge = vec![Artifact {
            kind: 1,
            payload: vec![0; MAX_ARTIFACT_PAYLOAD + 1],
        }];
        let mut buf = BytesMut::new();
        assert_eq!(
            encode_section(&huge, &mut buf),
            Err(WireError::TooLarge("artifact payload"))
        );

        // Decoder: a hostile count dies on the remaining-length
        // pre-check, not on allocation.
        let mut rd: &[u8] = &[0xFF, 0xFF];
        assert!(decode_section(&mut rd).is_err());
        // A hostile payload length likewise.
        let mut frame = BytesMut::new();
        put_u16_le(&mut frame, 1);
        frame.put_u32_le(7);
        frame.put_u32_le(u32::MAX);
        let mut rd: &[u8] = &frame;
        assert!(decode_section(&mut rd).is_err());
    }
}
