//! Aligned-case collector (paper Figure 3).

use dcs_bitmap::Bitmap;
use dcs_hash::IndexHasher;
use dcs_traffic::Packet;

/// Configuration of an aligned-case collector.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct AlignedConfig {
    /// Bitmap width in bits. The paper uses 4 Mbit for an OC-48 link
    /// (≈2.4 M packets per one-second epoch at 50 % fill).
    pub bitmap_bits: usize,
    /// How many leading payload bytes are hashed — the `len` of
    /// `hash(range(pkt.content, 0, len))` in Figure 3.
    pub hash_prefix_len: usize,
    /// Epoch-wide hash seed. **Must be identical across all monitoring
    /// points** in a deployment: the analysis centre correlates bit
    /// *positions*, so the same payload must map to the same index
    /// everywhere.
    pub seed: u64,
    /// Fill ratio at which the epoch closes (paper: "once about half of
    /// the n bits become 1's, the measurement epoch ends").
    pub target_fill: f64,
}

impl Default for AlignedConfig {
    fn default() -> Self {
        AlignedConfig {
            bitmap_bits: 4 * 1024 * 1024,
            hash_prefix_len: 64,
            seed: 0,
            target_fill: 0.5,
        }
    }
}

impl AlignedConfig {
    /// A small-scale configuration for tests and examples.
    pub fn small(bitmap_bits: usize, seed: u64) -> Self {
        AlignedConfig {
            bitmap_bits,
            seed,
            ..AlignedConfig::default()
        }
    }
}

/// The digest shipped to the analysis centre at the end of an epoch.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct AlignedDigest {
    /// The hashed bitmap.
    pub bitmap: Bitmap,
    /// Packets observed during the epoch (with or without payload).
    pub packets_seen: u64,
    /// Payload-carrying packets actually hashed.
    pub packets_hashed: u64,
    /// Raw traffic volume summarised, in wire bytes.
    pub raw_bytes: u64,
}

impl AlignedDigest {
    /// Raw-traffic bytes divided by encoded digest bytes — the paper's
    /// compression figure of merit (three orders of magnitude expected).
    pub fn compression_ratio(&self) -> f64 {
        self.raw_bytes as f64 / self.bitmap.encoded_len() as f64
    }
}

/// Streaming collector for the aligned case.
#[derive(Debug)]
pub struct AlignedCollector {
    cfg: AlignedConfig,
    hasher: IndexHasher,
    bitmap: Bitmap,
    packets_seen: u64,
    packets_hashed: u64,
    raw_bytes: u64,
}

impl AlignedCollector {
    /// Creates a collector.
    ///
    /// # Panics
    /// Panics if `bitmap_bits == 0` or `target_fill` is not in `(0, 1]`.
    pub fn new(cfg: AlignedConfig) -> Self {
        assert!(cfg.bitmap_bits > 0, "bitmap must be non-empty");
        assert!(
            cfg.target_fill > 0.0 && cfg.target_fill <= 1.0,
            "target fill must be in (0,1]"
        );
        let hasher = IndexHasher::new(cfg.seed);
        let bitmap = Bitmap::new(cfg.bitmap_bits);
        AlignedCollector {
            cfg,
            hasher,
            bitmap,
            packets_seen: 0,
            packets_hashed: 0,
            raw_bytes: 0,
        }
    }

    /// Processes one packet (Figure 3 update algorithm). Returns `true`
    /// when the epoch has reached its target fill and should be shipped.
    pub fn observe(&mut self, pkt: &Packet) -> bool {
        self.packets_seen += 1;
        self.raw_bytes += pkt.wire_len() as u64;
        if pkt.has_payload() {
            let len = self.cfg.hash_prefix_len.min(pkt.payload.len());
            let idx = self.hasher.index(&pkt.payload[..len], self.cfg.bitmap_bits);
            self.bitmap.set(idx);
            self.packets_hashed += 1;
        }
        self.epoch_full()
    }

    /// The bitmap index this packet's payload hashes to — the same
    /// index [`observe`](Self::observe) sets — or `None` for a
    /// header-only packet. Lets a sidecar summary (the heavy-hitter
    /// sketch) key on the exact column the analysis centre correlates,
    /// without re-deriving the hashing rule.
    pub fn index_of(&self, pkt: &Packet) -> Option<usize> {
        if !pkt.has_payload() {
            return None;
        }
        let len = self.cfg.hash_prefix_len.min(pkt.payload.len());
        Some(self.hasher.index(&pkt.payload[..len], self.cfg.bitmap_bits))
    }

    /// Whether the bitmap has reached the target fill ratio.
    pub fn epoch_full(&self) -> bool {
        self.bitmap.fill_ratio() >= self.cfg.target_fill
    }

    /// Current fill ratio.
    pub fn fill_ratio(&self) -> f64 {
        self.bitmap.fill_ratio()
    }

    /// Closes the epoch: returns the digest and resets all state for the
    /// next epoch.
    pub fn finish_epoch(&mut self) -> AlignedDigest {
        let mut bitmap = Bitmap::new(self.cfg.bitmap_bits);
        std::mem::swap(&mut bitmap, &mut self.bitmap);
        let digest = AlignedDigest {
            bitmap,
            packets_seen: self.packets_seen,
            packets_hashed: self.packets_hashed,
            raw_bytes: self.raw_bytes,
        };
        self.packets_seen = 0;
        self.packets_hashed = 0;
        self.raw_bytes = 0;
        digest
    }

    /// The configuration in use.
    pub fn config(&self) -> &AlignedConfig {
        &self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcs_traffic::{FlowLabel, Packet};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn packet(rng: &mut StdRng, len: usize) -> Packet {
        let mut payload = vec![0u8; len];
        rng.fill(payload.as_mut_slice());
        Packet::new(FlowLabel::random(rng), payload)
    }

    #[test]
    fn identical_payloads_set_identical_bits() {
        let mut r = StdRng::seed_from_u64(1);
        let mut c1 = AlignedCollector::new(AlignedConfig::small(1 << 16, 7));
        let mut c2 = AlignedCollector::new(AlignedConfig::small(1 << 16, 7));
        let p = packet(&mut r, 536);
        // Same payload on different flows at different routers.
        let p2 = Packet::new(FlowLabel::random(&mut r), p.payload.clone());
        c1.observe(&p);
        c2.observe(&p2);
        let d1 = c1.finish_epoch();
        let d2 = c2.finish_epoch();
        assert_eq!(d1.bitmap.common_ones(&d2.bitmap), 1);
        assert_eq!(d1.bitmap.iter_ones().next(), d2.bitmap.iter_ones().next());
    }

    #[test]
    fn different_seeds_break_correlation() {
        let mut r = StdRng::seed_from_u64(2);
        let mut c1 = AlignedCollector::new(AlignedConfig::small(1 << 16, 7));
        let mut c2 = AlignedCollector::new(AlignedConfig::small(1 << 16, 8));
        let p = packet(&mut r, 536);
        c1.observe(&p);
        c2.observe(&p);
        let (d1, d2) = (c1.finish_epoch(), c2.finish_epoch());
        let i1 = d1.bitmap.iter_ones().next();
        let i2 = d2.bitmap.iter_ones().next();
        assert_ne!(i1, i2, "different seeds should give different indices");
    }

    #[test]
    fn header_only_packets_not_hashed() {
        let mut r = StdRng::seed_from_u64(3);
        let mut c = AlignedCollector::new(AlignedConfig::small(1024, 1));
        c.observe(&packet(&mut r, 0));
        let d = c.finish_epoch();
        assert_eq!(d.packets_seen, 1);
        assert_eq!(d.packets_hashed, 0);
        assert_eq!(d.bitmap.weight(), 0);
        assert_eq!(d.raw_bytes, 40);
    }

    #[test]
    fn epoch_closes_at_half_fill() {
        let mut r = StdRng::seed_from_u64(4);
        let mut c = AlignedCollector::new(AlignedConfig::small(256, 1));
        let mut closed = false;
        for _ in 0..2000 {
            if c.observe(&packet(&mut r, 100)) {
                closed = true;
                break;
            }
        }
        assert!(closed, "epoch never reached half fill");
        assert!(c.fill_ratio() >= 0.5);
        let d = c.finish_epoch();
        assert!(d.bitmap.fill_ratio() >= 0.5);
        assert_eq!(c.fill_ratio(), 0.0, "collector reset after epoch");
    }

    #[test]
    fn fill_matches_bloom_expectation() {
        // Hashing q distinct payloads into n bits should leave about
        // n(1 − (1−1/n)^q) ones.
        let mut r = StdRng::seed_from_u64(5);
        let n = 1 << 14;
        let q = 8_000usize;
        let mut c = AlignedCollector::new(AlignedConfig::small(n, 1));
        for _ in 0..q {
            c.observe(&packet(&mut r, 64));
        }
        let expect = n as f64 * (1.0 - (1.0 - 1.0 / n as f64).powi(q as i32));
        let got = f64::from(c.finish_epoch().bitmap.weight());
        assert!(
            (got - expect).abs() < 4.0 * expect.sqrt(),
            "weight {got} far from Bloom expectation {expect}"
        );
    }

    #[test]
    fn compression_ratio_reported() {
        let mut r = StdRng::seed_from_u64(6);
        let mut c = AlignedCollector::new(AlignedConfig::small(1 << 10, 1));
        for _ in 0..100 {
            c.observe(&packet(&mut r, 1460));
        }
        let d = c.finish_epoch();
        assert_eq!(d.raw_bytes, 100 * 1500);
        assert!(d.compression_ratio() > 1000.0);
    }

    #[test]
    fn index_of_matches_observe() {
        let mut r = StdRng::seed_from_u64(8);
        let mut c = AlignedCollector::new(AlignedConfig::small(1 << 12, 7));
        for len in [0usize, 1, 63, 64, 65, 536] {
            let p = packet(&mut r, len);
            let predicted = c.index_of(&p);
            let before: Vec<usize> = {
                let d = c.bitmap.clone();
                d.iter_ones().collect()
            };
            c.observe(&p);
            let after: Vec<usize> = c.bitmap.iter_ones().collect();
            match predicted {
                None => assert_eq!(before, after, "header-only packet set a bit"),
                Some(idx) => assert!(after.contains(&idx), "len {len}: predicted {idx} unset"),
            }
        }
    }

    #[test]
    fn long_prefix_len_clamped_to_payload() {
        let mut r = StdRng::seed_from_u64(7);
        let cfg = AlignedConfig {
            bitmap_bits: 1024,
            hash_prefix_len: 4096,
            seed: 1,
            target_fill: 0.5,
        };
        let mut c = AlignedCollector::new(cfg);
        c.observe(&packet(&mut r, 100)); // shorter than prefix_len: no panic
        assert_eq!(c.finish_epoch().packets_hashed, 1);
    }
}
