//! Borrowed, validated views over digest wire frames.
//!
//! [`AlignedDigestView`] and [`UnalignedDigestView`] mirror the
//! `decode_wire` validation of their owned counterparts byte for byte —
//! magic, version, truncation, group-layout and width checks — but keep
//! the bitmap word bytes borrowed in place instead of copying them into
//! owned `Vec<u64>`s. The analysis centre fuses digests straight out of
//! the received frame bytes through these views (validate-then-view),
//! so the steady-state ingest path allocates nothing per digest.

use crate::wire::{check_header, get_u32, get_u64, ALIGNED_MAGIC, UNALIGNED_MAGIC};
use crate::{AlignedDigest, UnalignedDigest, WireError};
use dcs_bitmap::{Bitmap, BitmapView};

/// Borrowed view of one aligned-digest frame (`b"DCSA"`).
///
/// Field-for-field mirror of [`AlignedDigest`], with the bitmap left on
/// the wire as a [`BitmapView`].
#[derive(Clone, Copy, Debug)]
pub struct AlignedDigestView<'a> {
    /// The epoch's n-bit bitmap, borrowed from the frame.
    pub bitmap: BitmapView<'a>,
    /// Packets observed.
    pub packets_seen: u64,
    /// Packets hashed into the bitmap.
    pub packets_hashed: u64,
    /// Raw traffic volume summarised, in wire bytes.
    pub raw_bytes: u64,
}

impl<'a> AlignedDigestView<'a> {
    /// Validates the frame at the front of `buf`, returning the view and
    /// the bytes it covers. Applies exactly the checks of
    /// [`AlignedDigest::decode_wire`].
    pub fn parse(buf: &'a [u8]) -> Result<(AlignedDigestView<'a>, usize), WireError> {
        let mut rest = buf;
        check_header(&mut rest, ALIGNED_MAGIC)?;
        let packets_seen = get_u64(&mut rest)?;
        let packets_hashed = get_u64(&mut rest)?;
        let raw_bytes = get_u64(&mut rest)?;
        let bitmap = BitmapView::parse(rest)?;
        let used = buf.len() - rest.len() + bitmap.encoded_len();
        Ok((
            AlignedDigestView {
                bitmap,
                packets_seen,
                packets_hashed,
                raw_bytes,
            },
            used,
        ))
    }

    /// Copies the view into an owned [`AlignedDigest`].
    pub fn to_owned(&self) -> AlignedDigest {
        AlignedDigest {
            bitmap: self.bitmap.to_bitmap(),
            packets_seen: self.packets_seen,
            packets_hashed: self.packets_hashed,
            raw_bytes: self.raw_bytes,
        }
    }
}

/// Borrowed view of one unaligned-digest frame (`b"DCSU"`).
///
/// Because `decode_wire` already enforces uniform array widths, every
/// embedded bitmap frame has the same encoded length; arrays are
/// addressed by computed offset into the borrowed body, with no
/// per-array bookkeeping.
#[derive(Clone, Copy, Debug)]
pub struct UnalignedDigestView<'a> {
    /// Arrays per group (rows per group when fused into a matrix).
    pub arrays_per_group: usize,
    /// Packets observed.
    pub packets_seen: u64,
    /// Packets sampled (payload ≥ min_payload).
    pub packets_sampled: u64,
    /// Raw traffic volume summarised, in wire bytes.
    pub raw_bytes: u64,
    /// Total number of arrays.
    count: usize,
    /// Encoded bytes of each array frame (uniform — widths agree).
    frame_len: usize,
    /// `count * frame_len` bytes of concatenated array frames.
    body: &'a [u8],
}

impl<'a> UnalignedDigestView<'a> {
    /// Validates the frame at the front of `buf`, returning the view and
    /// the bytes it covers. Applies exactly the checks of
    /// [`UnalignedDigest::decode_wire`], including the incremental
    /// width-agreement check and the count-versus-buffer cap.
    pub fn parse(buf: &'a [u8]) -> Result<(UnalignedDigestView<'a>, usize), WireError> {
        let mut rest = buf;
        check_header(&mut rest, UNALIGNED_MAGIC)?;
        let packets_seen = get_u64(&mut rest)?;
        let packets_sampled = get_u64(&mut rest)?;
        let raw_bytes = get_u64(&mut rest)?;
        let arrays_per_group = get_u32(&mut rest)? as usize;
        let count = get_u32(&mut rest)? as usize;
        if arrays_per_group == 0 {
            return Err(WireError::Malformed("arrays_per_group = 0"));
        }
        if !count.is_multiple_of(arrays_per_group) {
            return Err(WireError::Malformed("array count not a group multiple"));
        }
        // Same attacker-controlled-count cap as the owned decoder.
        const MIN_BITMAP_FRAME: usize = 13;
        if count.saturating_mul(MIN_BITMAP_FRAME) > rest.len() {
            return Err(WireError::Truncated);
        }
        let body_start = buf.len() - rest.len();
        let mut frame_len = 0;
        let mut width = 0;
        let mut offset = 0;
        for i in 0..count {
            let bm = BitmapView::parse(&rest[offset..])?;
            if i == 0 {
                frame_len = bm.encoded_len();
                width = bm.len();
            } else if bm.len() != width {
                return Err(WireError::Malformed("mixed array widths"));
            }
            offset += bm.encoded_len();
        }
        Ok((
            UnalignedDigestView {
                arrays_per_group,
                packets_seen,
                packets_sampled,
                raw_bytes,
                count,
                frame_len,
                body: &rest[..offset],
            },
            body_start + offset,
        ))
    }

    /// Total number of arrays.
    #[inline]
    pub fn array_count(&self) -> usize {
        self.count
    }

    /// Total encoded bytes of the array bitmaps, as counted by
    /// [`UnalignedDigest::encoded_len`].
    #[inline]
    pub fn encoded_len(&self) -> usize {
        self.count * self.frame_len
    }

    /// Number of groups.
    #[inline]
    pub fn groups(&self) -> usize {
        self.count / self.arrays_per_group
    }

    /// View of array `i` (group-major order, as in
    /// [`UnalignedDigest::arrays`]).
    ///
    /// # Panics
    /// Panics if `i >= array_count()`.
    #[inline]
    pub fn array(&self, i: usize) -> BitmapView<'a> {
        assert!(i < self.count, "array {i} out of range {}", self.count);
        let frame = &self.body[i * self.frame_len..(i + 1) * self.frame_len];
        BitmapView::parse(frame).expect("frames validated by UnalignedDigestView::parse")
    }

    /// Copies the view into an owned [`UnalignedDigest`].
    pub fn to_owned(&self) -> UnalignedDigest {
        let arrays: Vec<Bitmap> = (0..self.count).map(|i| self.array(i).to_bitmap()).collect();
        UnalignedDigest {
            arrays,
            arrays_per_group: self.arrays_per_group,
            packets_seen: self.packets_seen,
            packets_sampled: self.packets_sampled,
            raw_bytes: self.raw_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AlignedCollector, AlignedConfig, UnalignedCollector, UnalignedConfig};
    use dcs_traffic::{FlowLabel, Packet};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn digests() -> (AlignedDigest, UnalignedDigest) {
        let mut r = StdRng::seed_from_u64(5);
        let mut a = AlignedCollector::new(AlignedConfig::small(1 << 12, 3));
        let mut u = UnalignedCollector::new(UnalignedConfig::small(4, 3, 5));
        for _ in 0..1500 {
            let mut payload = vec![0u8; 536];
            r.fill(payload.as_mut_slice());
            let p = Packet::new(FlowLabel::random(&mut r), payload);
            a.observe(&p);
            u.observe(&p);
        }
        (a.finish_epoch(), u.finish_epoch())
    }

    #[test]
    fn aligned_view_matches_owned_decode() {
        let (a, _) = digests();
        let wire = a.encode_wire();
        let (owned, used_owned) = AlignedDigest::decode_wire(&wire).unwrap();
        let (view, used_view) = AlignedDigestView::parse(&wire).unwrap();
        assert_eq!(used_view, used_owned);
        assert_eq!(view.to_owned(), owned);
    }

    #[test]
    fn unaligned_view_matches_owned_decode() {
        let (_, u) = digests();
        let wire = u.encode_wire().unwrap();
        let (owned, used_owned) = UnalignedDigest::decode_wire(&wire).unwrap();
        let (view, used_view) = UnalignedDigestView::parse(&wire).unwrap();
        assert_eq!(used_view, used_owned);
        assert_eq!(view.array_count(), owned.arrays.len());
        assert_eq!(view.groups(), owned.groups());
        for (i, bm) in owned.arrays.iter().enumerate() {
            assert_eq!(&view.array(i).to_bitmap(), bm, "array {i}");
        }
        assert_eq!(view.to_owned(), owned);
    }

    #[test]
    fn views_reject_what_owned_decoders_reject() {
        let (a, u) = digests();
        for (wire, aligned) in [
            (a.encode_wire().to_vec(), true),
            (u.encode_wire().unwrap().to_vec(), false),
        ] {
            for cut in [0usize, 3, 5, 12, 29, wire.len() - 1] {
                if aligned {
                    assert!(AlignedDigestView::parse(&wire[..cut]).is_err(), "cut {cut}");
                } else {
                    assert!(
                        UnalignedDigestView::parse(&wire[..cut]).is_err(),
                        "cut {cut}"
                    );
                }
            }
        }
    }
}
