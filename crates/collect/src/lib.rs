//! Online data-collection (streaming) modules.
//!
//! These run "at each monitored link or node … at line speeds" (paper
//! Section II-B) and compress an epoch of traffic into bitmap digests:
//!
//! * [`aligned::AlignedCollector`] — Figure 3: hash the first `len` bytes
//!   of every payload into one bit of an n-bit bitmap; close the epoch when
//!   the bitmap is half full (the Bloom-filter sweet spot);
//! * [`unaligned::UnalignedCollector`] — Figures 8–9: *offset sampling*
//!   (k random in-payload offsets, one small array per offset, match
//!   probability amplified ≈ k²) combined with *flow splitting* (hash the
//!   flow label into one of `groups` groups so each array stays narrow and
//!   the per-array signal strong).
//!
//! Both produce digests that record how many raw bytes they summarise, so
//! the paper's three-orders-of-magnitude compression claim is measurable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aligned;
pub mod artifact;
pub mod sized;
pub mod unaligned;
pub mod view;
pub mod wire;

pub use aligned::{AlignedCollector, AlignedConfig, AlignedDigest};
pub use artifact::{Artifact, ARTIFACT_KIND_SKETCH, MAX_ARTIFACTS, MAX_ARTIFACT_PAYLOAD};
pub use sized::{SizeClass, SizedAlignedCollector, SizedAlignedDigest};
pub use unaligned::{UnalignedCollector, UnalignedConfig, UnalignedDigest};
pub use view::{AlignedDigestView, UnalignedDigestView};
pub use wire::WireError;
