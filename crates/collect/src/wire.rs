//! Binary wire framing for whole digest bundles.
//!
//! JSON (via serde) is convenient for tooling, but a real deployment ships
//! digests on the measurement plane where every byte counts — the whole
//! point of DCS is the digest-size budget. This module frames
//! [`AlignedDigest`] and [`UnalignedDigest`] in the same dense
//! little-endian style as [`dcs_bitmap`]'s bitmap frames, with magic and
//! version bytes so streams are self-describing.

use crate::{AlignedDigest, UnalignedDigest};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use dcs_bitmap::{Bitmap, DecodeError as BitmapError};
use std::fmt;

/// Magic for aligned digest frames (`b"DCSA"`).
pub const ALIGNED_MAGIC: [u8; 4] = *b"DCSA";
/// Magic for unaligned digest frames (`b"DCSU"`).
pub const UNALIGNED_MAGIC: [u8; 4] = *b"DCSU";

const VERSION: u8 = 1;

/// Errors from decoding digest frames.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Buffer too short for the fixed header or declared body.
    Truncated,
    /// Unexpected magic bytes.
    BadMagic([u8; 4]),
    /// Unsupported version.
    BadVersion(u8),
    /// A contained bitmap failed to decode.
    Bitmap(BitmapError),
    /// Structurally impossible field (e.g. zero arrays-per-group).
    Malformed(&'static str),
    /// Encode-side failure: a field exceeds what the frame format can
    /// carry (a frame must never be emitted with silently truncated
    /// counts — it would decode to the wrong group layout).
    TooLarge(&'static str),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "digest frame truncated"),
            WireError::BadMagic(m) => write!(f, "bad digest magic {m:02x?}"),
            WireError::BadVersion(v) => write!(f, "unsupported digest version {v}"),
            WireError::Bitmap(e) => write!(f, "embedded bitmap: {e}"),
            WireError::Malformed(what) => write!(f, "malformed digest frame: {what}"),
            WireError::TooLarge(what) => {
                write!(f, "digest does not fit the wire format: {what}")
            }
        }
    }
}

impl std::error::Error for WireError {}

impl From<BitmapError> for WireError {
    fn from(e: BitmapError) -> Self {
        WireError::Bitmap(e)
    }
}

pub(crate) fn check_header(buf: &mut &[u8], magic: [u8; 4]) -> Result<(), WireError> {
    if buf.len() < 5 {
        return Err(WireError::Truncated);
    }
    let mut m = [0u8; 4];
    buf.copy_to_slice(&mut m);
    if m != magic {
        return Err(WireError::BadMagic(m));
    }
    let v = buf.get_u8();
    if v != VERSION {
        return Err(WireError::BadVersion(v));
    }
    Ok(())
}

pub(crate) fn get_u64(buf: &mut &[u8]) -> Result<u64, WireError> {
    if buf.len() < 8 {
        return Err(WireError::Truncated);
    }
    Ok(buf.get_u64_le())
}

pub(crate) fn get_u32(buf: &mut &[u8]) -> Result<u32, WireError> {
    if buf.len() < 4 {
        return Err(WireError::Truncated);
    }
    Ok(buf.get_u32_le())
}

/// Splits one bitmap frame off the front of `buf` (frames are
/// self-describing, so the length comes from the embedded header).
fn take_bitmap(buf: &mut &[u8]) -> Result<Bitmap, WireError> {
    let bm = Bitmap::decode(buf)?;
    let consumed = bm.encoded_len();
    if buf.len() < consumed {
        return Err(WireError::Truncated);
    }
    buf.advance(consumed);
    Ok(bm)
}

impl AlignedDigest {
    /// Encodes the digest into a binary frame.
    pub fn encode_wire(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(29 + self.bitmap.encoded_len());
        buf.put_slice(&ALIGNED_MAGIC);
        buf.put_u8(VERSION);
        buf.put_u64_le(self.packets_seen);
        buf.put_u64_le(self.packets_hashed);
        buf.put_u64_le(self.raw_bytes);
        buf.put_slice(&self.bitmap.encode());
        buf.freeze()
    }

    /// Decodes a frame produced by [`AlignedDigest::encode_wire`],
    /// returning the digest and the bytes consumed.
    pub fn decode_wire(mut buf: &[u8]) -> Result<(AlignedDigest, usize), WireError> {
        let start = buf.len();
        check_header(&mut buf, ALIGNED_MAGIC)?;
        let packets_seen = get_u64(&mut buf)?;
        let packets_hashed = get_u64(&mut buf)?;
        let raw_bytes = get_u64(&mut buf)?;
        let bitmap = take_bitmap(&mut buf)?;
        Ok((
            AlignedDigest {
                bitmap,
                packets_seen,
                packets_hashed,
                raw_bytes,
            },
            start - buf.len(),
        ))
    }
}

impl UnalignedDigest {
    /// Encodes the digest into a binary frame.
    ///
    /// Fails with [`WireError::TooLarge`] when `arrays_per_group` or the
    /// array count exceeds the format's `u32` fields — emitting a frame
    /// with truncated counts would decode to the wrong group layout.
    pub fn encode_wire(&self) -> Result<Bytes, WireError> {
        let arrays_per_group = u32::try_from(self.arrays_per_group)
            .map_err(|_| WireError::TooLarge("arrays_per_group exceeds u32"))?;
        let count = u32::try_from(self.arrays.len())
            .map_err(|_| WireError::TooLarge("array count exceeds u32"))?;
        let body: usize = self.arrays.iter().map(Bitmap::encoded_len).sum();
        let mut buf = BytesMut::with_capacity(37 + body);
        buf.put_slice(&UNALIGNED_MAGIC);
        buf.put_u8(VERSION);
        buf.put_u64_le(self.packets_seen);
        buf.put_u64_le(self.packets_sampled);
        buf.put_u64_le(self.raw_bytes);
        buf.put_u32_le(arrays_per_group);
        buf.put_u32_le(count);
        for a in &self.arrays {
            buf.put_slice(&a.encode());
        }
        Ok(buf.freeze())
    }

    /// Decodes a frame produced by [`UnalignedDigest::encode_wire`],
    /// returning the digest and the bytes consumed.
    pub fn decode_wire(mut buf: &[u8]) -> Result<(UnalignedDigest, usize), WireError> {
        let start = buf.len();
        check_header(&mut buf, UNALIGNED_MAGIC)?;
        let packets_seen = get_u64(&mut buf)?;
        let packets_sampled = get_u64(&mut buf)?;
        let raw_bytes = get_u64(&mut buf)?;
        let arrays_per_group = get_u32(&mut buf)? as usize;
        let count = get_u32(&mut buf)? as usize;
        if arrays_per_group == 0 {
            return Err(WireError::Malformed("arrays_per_group = 0"));
        }
        if !count.is_multiple_of(arrays_per_group) {
            return Err(WireError::Malformed("array count not a group multiple"));
        }
        // The declared count is attacker-controlled: every bitmap frame
        // costs at least its 13-byte header, so a count the remaining
        // bytes cannot possibly hold is rejected before any allocation.
        const MIN_BITMAP_FRAME: usize = 13;
        if count.saturating_mul(MIN_BITMAP_FRAME) > buf.len() {
            return Err(WireError::Truncated);
        }
        let mut arrays: Vec<Bitmap> = Vec::with_capacity(count);
        for _ in 0..count {
            let bm = take_bitmap(&mut buf)?;
            // Width agreement is checked as arrays are decoded, so a
            // frame mixing widths is rejected without decoding the rest.
            if let Some(first) = arrays.first() {
                if bm.len() != first.len() {
                    return Err(WireError::Malformed("mixed array widths"));
                }
            }
            arrays.push(bm);
        }
        Ok((
            UnalignedDigest {
                arrays,
                arrays_per_group,
                packets_seen,
                packets_sampled,
                raw_bytes,
            },
            start - buf.len(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AlignedCollector, AlignedConfig, UnalignedCollector, UnalignedConfig};
    use dcs_traffic::{FlowLabel, Packet};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn digests() -> (AlignedDigest, UnalignedDigest) {
        let mut r = StdRng::seed_from_u64(1);
        let mut a = AlignedCollector::new(AlignedConfig::small(1 << 12, 3));
        let mut u = UnalignedCollector::new(UnalignedConfig::small(4, 3, 5));
        for _ in 0..2000 {
            let mut payload = vec![0u8; 536];
            r.fill(payload.as_mut_slice());
            let p = Packet::new(FlowLabel::random(&mut r), payload);
            a.observe(&p);
            u.observe(&p);
        }
        (a.finish_epoch(), u.finish_epoch())
    }

    #[test]
    fn aligned_roundtrip() {
        let (a, _) = digests();
        let wire = a.encode_wire();
        let (back, used) = AlignedDigest::decode_wire(&wire).unwrap();
        assert_eq!(used, wire.len());
        assert_eq!(back.bitmap, a.bitmap);
        assert_eq!(back.packets_seen, a.packets_seen);
        assert_eq!(back.packets_hashed, a.packets_hashed);
        assert_eq!(back.raw_bytes, a.raw_bytes);
    }

    #[test]
    fn unaligned_roundtrip() {
        let (_, u) = digests();
        let wire = u.encode_wire().unwrap();
        let (back, used) = UnalignedDigest::decode_wire(&wire).unwrap();
        assert_eq!(used, wire.len());
        assert_eq!(back.arrays, u.arrays);
        assert_eq!(back.arrays_per_group, u.arrays_per_group);
        assert_eq!(back.packets_sampled, u.packets_sampled);
    }

    #[test]
    fn concatenated_frames_decode_in_sequence() {
        let (a, u) = digests();
        let mut stream = Vec::new();
        stream.extend_from_slice(&a.encode_wire());
        stream.extend_from_slice(&u.encode_wire().unwrap());
        let (a2, used) = AlignedDigest::decode_wire(&stream).unwrap();
        let (u2, used2) = UnalignedDigest::decode_wire(&stream[used..]).unwrap();
        assert_eq!(used + used2, stream.len());
        assert_eq!(a2.bitmap, a.bitmap);
        assert_eq!(u2.arrays.len(), u.arrays.len());
    }

    #[test]
    fn wrong_magic_rejected() {
        let (a, u) = digests();
        assert!(matches!(
            UnalignedDigest::decode_wire(&a.encode_wire()),
            Err(WireError::BadMagic(_))
        ));
        assert!(matches!(
            AlignedDigest::decode_wire(&u.encode_wire().unwrap()),
            Err(WireError::BadMagic(_))
        ));
    }

    #[test]
    fn truncations_rejected_everywhere() {
        let (a, u) = digests();
        for wire in [a.encode_wire(), u.encode_wire().unwrap()] {
            for cut in [0usize, 3, 5, 12, wire.len() - 1] {
                let a_res = AlignedDigest::decode_wire(&wire[..cut]);
                let u_res = UnalignedDigest::decode_wire(&wire[..cut]);
                assert!(
                    a_res.is_err() && u_res.is_err(),
                    "cut at {cut} of {} decoded",
                    wire.len()
                );
            }
        }
    }

    #[test]
    fn malformed_group_count_rejected() {
        let (_, u) = digests();
        let mut wire = u.encode_wire().unwrap().to_vec();
        // arrays_per_group lives at offset 29; set it to 3 (count is 40,
        // not a multiple of 3).
        wire[29] = 3;
        assert!(matches!(
            UnalignedDigest::decode_wire(&wire),
            Err(WireError::Malformed(_))
        ));
    }

    #[test]
    fn oversized_counts_refused_at_encode() {
        let (_, u) = digests();
        // A structurally impossible arrays_per_group must not be silently
        // truncated into a frame that decodes to a different group layout.
        let bad = UnalignedDigest {
            arrays_per_group: (u32::MAX as usize) + 1,
            ..u.clone()
        };
        assert!(matches!(bad.encode_wire(), Err(WireError::TooLarge(_))));
        assert!(u.encode_wire().is_ok(), "well-formed digest still encodes");
    }

    #[test]
    fn inflated_array_count_rejected_before_allocation() {
        let (_, u) = digests();
        let mut wire = u.encode_wire().unwrap().to_vec();
        // The count field lives at offset 33; declare u32::MAX arrays
        // (a multiple of arrays_per_group is not even needed — make it
        // one so the count check itself is what fires).
        wire[29..33].copy_from_slice(&1u32.to_le_bytes());
        wire[33..37].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(
            UnalignedDigest::decode_wire(&wire),
            Err(WireError::Truncated),
            "declared count far beyond the buffer must be refused"
        );
    }

    #[test]
    fn mixed_widths_rejected_incrementally() {
        // Hand-build a frame whose two arrays disagree on width; the
        // decoder must reject at the second array, not after decoding all.
        let a = Bitmap::from_indices(64, [1]);
        let b = Bitmap::from_indices(128, [2]);
        let mut wire = Vec::new();
        wire.extend_from_slice(&UNALIGNED_MAGIC);
        wire.push(1); // version
        wire.extend_from_slice(&[0u8; 24]); // packets_seen/sampled, raw_bytes
        wire.extend_from_slice(&2u32.to_le_bytes()); // arrays_per_group
        wire.extend_from_slice(&2u32.to_le_bytes()); // count
        wire.extend_from_slice(&a.encode());
        wire.extend_from_slice(&b.encode());
        assert_eq!(
            UnalignedDigest::decode_wire(&wire),
            Err(WireError::Malformed("mixed array widths"))
        );
    }

    #[test]
    fn wire_is_compact() {
        // The binary frame must beat JSON by a wide margin (JSON encodes
        // words as decimal numbers in arrays).
        let (a, _) = digests();
        let wire_len = a.encode_wire().len();
        let json_len = serde_json::to_string(&a).unwrap().len();
        assert!(
            wire_len * 2 < json_len,
            "wire {wire_len} not much smaller than JSON {json_len}"
        );
    }
}

#[cfg(test)]
mod fuzz {
    use super::*;
    use proptest::prelude::*;

    /// One valid frame of each kind, built from real collectors.
    fn valid_frames() -> (Vec<u8>, Vec<u8>) {
        use rand::{Rng as _, SeedableRng as _};
        let mut r = rand::rngs::StdRng::seed_from_u64(11);
        let mut a = crate::AlignedCollector::new(crate::AlignedConfig::small(1 << 10, 3));
        let mut u = crate::UnalignedCollector::new(crate::UnalignedConfig::small(2, 3, 5));
        for _ in 0..80 {
            let mut payload = vec![0u8; 536];
            r.fill(payload.as_mut_slice());
            let p = dcs_traffic::Packet::new(dcs_traffic::FlowLabel::random(&mut r), payload);
            a.observe(&p);
            u.observe(&p);
        }
        (
            a.finish_epoch().encode_wire().to_vec(),
            u.finish_epoch().encode_wire().unwrap().to_vec(),
        )
    }

    /// A decoded unaligned digest, however the bytes were mangled, must be
    /// structurally sound: consistent group layout, uniform widths, and a
    /// consumed length inside the buffer (no wrap-around).
    fn assert_sound_unaligned(res: Result<(UnalignedDigest, usize), WireError>, len: usize) {
        if let Ok((d, used)) = res {
            assert!(used <= len, "consumed {used} of a {len}-byte buffer");
            assert!(d.arrays_per_group > 0);
            assert!(d.arrays.len().is_multiple_of(d.arrays_per_group));
            if let Some(first) = d.arrays.first() {
                assert!(d.arrays.iter().all(|a| a.len() == first.len()));
            }
        }
    }

    /// Asserts the borrowed views agree with the owned decoders on
    /// `bytes`: same accept/reject decision, same consumed length, and
    /// identical content when both accept.
    fn assert_view_agrees(bytes: &[u8]) {
        match (
            AlignedDigest::decode_wire(bytes),
            crate::AlignedDigestView::parse(bytes),
        ) {
            (Ok((owned, used_o)), Ok((view, used_v))) => {
                assert_eq!(used_o, used_v, "aligned consumed length");
                assert_eq!(view.to_owned(), owned, "aligned content");
            }
            (Err(_), Err(_)) => {}
            (o, v) => panic!("aligned decode {:?} but view {:?}", o.is_ok(), v.is_ok()),
        }
        match (
            UnalignedDigest::decode_wire(bytes),
            crate::UnalignedDigestView::parse(bytes),
        ) {
            (Ok((owned, used_o)), Ok((view, used_v))) => {
                assert_eq!(used_o, used_v, "unaligned consumed length");
                assert_eq!(view.to_owned(), owned, "unaligned content");
            }
            (Err(_), Err(_)) => {}
            (o, v) => panic!("unaligned decode {:?} but view {:?}", o.is_ok(), v.is_ok()),
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Satellite coverage: every mutation of a valid frame —
        /// truncation, multi-bit flips, spliced header bytes (magic,
        /// version, counts) — decodes to a `WireError` or to a digest
        /// whose structure is consistent; never a panic or wrap-around.
        #[test]
        fn mutated_frames_error_or_stay_sound(
            cut_ppm in 0u32..1_000_000,
            flips in proptest::collection::vec((any::<usize>(), 1u8..=255), 0..6),
            splice_at in any::<usize>(),
            splice in proptest::collection::vec(any::<u8>(), 0..8),
        ) {
            let (aligned, unaligned) = valid_frames();
            for wire in [aligned, unaligned] {
                // Strict-prefix truncation must always be an error.
                let cut = (wire.len() as u64 * u64::from(cut_ppm) / 1_000_000) as usize;
                prop_assert!(AlignedDigest::decode_wire(&wire[..cut]).is_err());
                prop_assert!(UnalignedDigest::decode_wire(&wire[..cut]).is_err());

                // Bit flips + a spliced run anywhere (this covers bad
                // magic, bad version and inconsistent count fields).
                let mut mangled = wire.clone();
                for &(pos, mask) in &flips {
                    let p = pos % mangled.len();
                    mangled[p] ^= mask;
                }
                for (i, &b) in splice.iter().enumerate() {
                    let p = (splice_at.wrapping_add(i)) % mangled.len();
                    mangled[p] = b;
                }
                let _ = AlignedDigest::decode_wire(&mangled);
                assert_sound_unaligned(
                    UnalignedDigest::decode_wire(&mangled),
                    mangled.len(),
                );
                // The borrowed views face the same mangled bytes: they
                // must agree with the owned decoders exactly — same
                // accept/reject decision, same content on accept — and
                // never panic.
                assert_view_agrees(&mangled);
            }
        }

        /// `RouterDigestView`-style equivalence at the digest-frame
        /// level: parse ≡ decode_wire on arbitrary valid frames, and
        /// error-or-sound on mutated ones.
        #[test]
        fn views_agree_with_owned_decoders_on_valid_frames(seed in 0u64..32) {
            use rand::{Rng as _, SeedableRng as _};
            let mut r = rand::rngs::StdRng::seed_from_u64(seed);
            let mut a = crate::AlignedCollector::new(crate::AlignedConfig::small(1 << 10, 3));
            let mut u = crate::UnalignedCollector::new(crate::UnalignedConfig::small(2, 3, 5));
            for _ in 0..60 {
                let mut payload = vec![0u8; 536];
                r.fill(payload.as_mut_slice());
                let p = dcs_traffic::Packet::new(dcs_traffic::FlowLabel::random(&mut r), payload);
                a.observe(&p);
                u.observe(&p);
            }
            let aw = a.finish_epoch().encode_wire().to_vec();
            let uw = u.finish_epoch().encode_wire().unwrap().to_vec();
            assert_view_agrees(&aw);
            assert_view_agrees(&uw);
        }

        #[test]
        fn views_never_panic_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
            assert_view_agrees(&bytes);
        }

        #[test]
        fn decoders_never_panic_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
            let _ = AlignedDigest::decode_wire(&bytes);
            let _ = UnalignedDigest::decode_wire(&bytes);
        }

        /// Big-soup variant: up to 64 KiB of arbitrary bytes. Anything
        /// that is not a byte-exact valid frame must return `Err` without
        /// panicking, and a declared-but-absurd element count must never
        /// drive an allocation (the decoders cap counts against the
        /// remaining buffer before reserving).
        #[test]
        fn decoders_never_panic_on_64k_soup(
            bytes in proptest::collection::vec(any::<u8>(), 0..(64 * 1024)),
            stamp_magic in any::<bool>(),
        ) {
            let mut soup = bytes;
            if stamp_magic && soup.len() >= 4 {
                // Half the cases get a valid magic, forcing the decoders
                // past the first check into the length/count fields.
                let magic = if soup[0] & 1 == 0 { *b"DCSA" } else { *b"DCSU" };
                soup[..4].copy_from_slice(&magic);
            }
            let _ = AlignedDigest::decode_wire(&soup);
            let _ = UnalignedDigest::decode_wire(&soup);
            assert_view_agrees(&soup);
        }

        /// DCSS arm of the byte-soup fuzz: the sidecar-artifact section
        /// decoders face the same 64 KiB soup — never a panic, a
        /// hostile count/length field dies on the pre-allocation length
        /// check, and the owned and borrowing decoders agree on the
        /// accept/reject decision.
        #[test]
        fn artifact_section_never_panics_on_64k_soup(
            bytes in proptest::collection::vec(any::<u8>(), 0..(64 * 1024)),
            stamp_sketch in any::<bool>(),
        ) {
            let mut soup = bytes;
            if stamp_sketch && soup.len() >= 10 {
                // Half the cases claim one DCSS-kind artifact, pushing
                // the decoder into the length/CRC fields.
                soup[..2].copy_from_slice(&1u16.to_le_bytes());
                soup[2..6].copy_from_slice(&crate::artifact::ARTIFACT_KIND_SKETCH.to_le_bytes());
            }
            let mut owned: &[u8] = &soup;
            let owned_res = crate::artifact::decode_section(&mut owned);
            let mut view: &[u8] = &soup;
            let view_res = crate::artifact::decode_section_views(&mut view);
            assert_eq!(owned_res.is_ok(), view_res.is_ok(), "owned/view decoders diverged");
            if let (Ok(o), Ok(v)) = (&owned_res, &view_res) {
                assert_eq!(o.len(), v.len());
                for (a, (kind, payload)) in o.iter().zip(v) {
                    assert_eq!(a.kind, *kind);
                    assert_eq!(&a.payload[..], *payload);
                }
            }
        }

        #[test]
        fn decoders_never_panic_on_bitflips(pos in 0usize..200, val in any::<u8>()) {
            let mut r = {
                use rand::SeedableRng;
                rand::rngs::StdRng::seed_from_u64(1)
            };
            use rand::Rng as _;
            let mut col = crate::UnalignedCollector::new(crate::UnalignedConfig::small(2, 1, 1));
            for _ in 0..50 {
                let mut payload = vec![0u8; 536];
                r.fill(payload.as_mut_slice());
                col.observe(&dcs_traffic::Packet::new(
                    dcs_traffic::FlowLabel::random(&mut r),
                    payload,
                ));
            }
            let mut wire = col.finish_epoch().encode_wire().unwrap().to_vec();
            if pos < wire.len() {
                wire[pos] ^= val;
            }
            let _ = UnalignedDigest::decode_wire(&wire);
        }
    }
}
