//! Binary wire framing for whole digest bundles.
//!
//! JSON (via serde) is convenient for tooling, but a real deployment ships
//! digests on the measurement plane where every byte counts — the whole
//! point of DCS is the digest-size budget. This module frames
//! [`AlignedDigest`] and [`UnalignedDigest`] in the same dense
//! little-endian style as [`dcs_bitmap`]'s bitmap frames, with magic and
//! version bytes so streams are self-describing.

use crate::{AlignedDigest, UnalignedDigest};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use dcs_bitmap::{Bitmap, DecodeError as BitmapError};
use std::fmt;

/// Magic for aligned digest frames (`b"DCSA"`).
pub const ALIGNED_MAGIC: [u8; 4] = *b"DCSA";
/// Magic for unaligned digest frames (`b"DCSU"`).
pub const UNALIGNED_MAGIC: [u8; 4] = *b"DCSU";

const VERSION: u8 = 1;

/// Errors from decoding digest frames.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Buffer too short for the fixed header or declared body.
    Truncated,
    /// Unexpected magic bytes.
    BadMagic([u8; 4]),
    /// Unsupported version.
    BadVersion(u8),
    /// A contained bitmap failed to decode.
    Bitmap(BitmapError),
    /// Structurally impossible field (e.g. zero arrays-per-group).
    Malformed(&'static str),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "digest frame truncated"),
            WireError::BadMagic(m) => write!(f, "bad digest magic {m:02x?}"),
            WireError::BadVersion(v) => write!(f, "unsupported digest version {v}"),
            WireError::Bitmap(e) => write!(f, "embedded bitmap: {e}"),
            WireError::Malformed(what) => write!(f, "malformed digest frame: {what}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<BitmapError> for WireError {
    fn from(e: BitmapError) -> Self {
        WireError::Bitmap(e)
    }
}

fn check_header(buf: &mut &[u8], magic: [u8; 4]) -> Result<(), WireError> {
    if buf.len() < 5 {
        return Err(WireError::Truncated);
    }
    let mut m = [0u8; 4];
    buf.copy_to_slice(&mut m);
    if m != magic {
        return Err(WireError::BadMagic(m));
    }
    let v = buf.get_u8();
    if v != VERSION {
        return Err(WireError::BadVersion(v));
    }
    Ok(())
}

fn get_u64(buf: &mut &[u8]) -> Result<u64, WireError> {
    if buf.len() < 8 {
        return Err(WireError::Truncated);
    }
    Ok(buf.get_u64_le())
}

fn get_u32(buf: &mut &[u8]) -> Result<u32, WireError> {
    if buf.len() < 4 {
        return Err(WireError::Truncated);
    }
    Ok(buf.get_u32_le())
}

/// Splits one bitmap frame off the front of `buf` (frames are
/// self-describing, so the length comes from the embedded header).
fn take_bitmap(buf: &mut &[u8]) -> Result<Bitmap, WireError> {
    let bm = Bitmap::decode(buf)?;
    let consumed = bm.encoded_len();
    if buf.len() < consumed {
        return Err(WireError::Truncated);
    }
    buf.advance(consumed);
    Ok(bm)
}

impl AlignedDigest {
    /// Encodes the digest into a binary frame.
    pub fn encode_wire(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(29 + self.bitmap.encoded_len());
        buf.put_slice(&ALIGNED_MAGIC);
        buf.put_u8(VERSION);
        buf.put_u64_le(self.packets_seen);
        buf.put_u64_le(self.packets_hashed);
        buf.put_u64_le(self.raw_bytes);
        buf.put_slice(&self.bitmap.encode());
        buf.freeze()
    }

    /// Decodes a frame produced by [`AlignedDigest::encode_wire`],
    /// returning the digest and the bytes consumed.
    pub fn decode_wire(mut buf: &[u8]) -> Result<(AlignedDigest, usize), WireError> {
        let start = buf.len();
        check_header(&mut buf, ALIGNED_MAGIC)?;
        let packets_seen = get_u64(&mut buf)?;
        let packets_hashed = get_u64(&mut buf)?;
        let raw_bytes = get_u64(&mut buf)?;
        let bitmap = take_bitmap(&mut buf)?;
        Ok((
            AlignedDigest {
                bitmap,
                packets_seen,
                packets_hashed,
                raw_bytes,
            },
            start - buf.len(),
        ))
    }
}

impl UnalignedDigest {
    /// Encodes the digest into a binary frame.
    pub fn encode_wire(&self) -> Bytes {
        let body: usize = self.arrays.iter().map(Bitmap::encoded_len).sum();
        let mut buf = BytesMut::with_capacity(37 + body);
        buf.put_slice(&UNALIGNED_MAGIC);
        buf.put_u8(VERSION);
        buf.put_u64_le(self.packets_seen);
        buf.put_u64_le(self.packets_sampled);
        buf.put_u64_le(self.raw_bytes);
        buf.put_u32_le(self.arrays_per_group as u32);
        buf.put_u32_le(self.arrays.len() as u32);
        for a in &self.arrays {
            buf.put_slice(&a.encode());
        }
        buf.freeze()
    }

    /// Decodes a frame produced by [`UnalignedDigest::encode_wire`],
    /// returning the digest and the bytes consumed.
    pub fn decode_wire(mut buf: &[u8]) -> Result<(UnalignedDigest, usize), WireError> {
        let start = buf.len();
        check_header(&mut buf, UNALIGNED_MAGIC)?;
        let packets_seen = get_u64(&mut buf)?;
        let packets_sampled = get_u64(&mut buf)?;
        let raw_bytes = get_u64(&mut buf)?;
        let arrays_per_group = get_u32(&mut buf)? as usize;
        let count = get_u32(&mut buf)? as usize;
        if arrays_per_group == 0 {
            return Err(WireError::Malformed("arrays_per_group = 0"));
        }
        if !count.is_multiple_of(arrays_per_group) {
            return Err(WireError::Malformed("array count not a group multiple"));
        }
        let mut arrays = Vec::with_capacity(count.min(1 << 20));
        for _ in 0..count {
            arrays.push(take_bitmap(&mut buf)?);
        }
        if let Some(first) = arrays.first() {
            if arrays.iter().any(|a| a.len() != first.len()) {
                return Err(WireError::Malformed("mixed array widths"));
            }
        }
        Ok((
            UnalignedDigest {
                arrays,
                arrays_per_group,
                packets_seen,
                packets_sampled,
                raw_bytes,
            },
            start - buf.len(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AlignedCollector, AlignedConfig, UnalignedCollector, UnalignedConfig};
    use dcs_traffic::{FlowLabel, Packet};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn digests() -> (AlignedDigest, UnalignedDigest) {
        let mut r = StdRng::seed_from_u64(1);
        let mut a = AlignedCollector::new(AlignedConfig::small(1 << 12, 3));
        let mut u = UnalignedCollector::new(UnalignedConfig::small(4, 3, 5));
        for _ in 0..2000 {
            let mut payload = vec![0u8; 536];
            r.fill(payload.as_mut_slice());
            let p = Packet::new(FlowLabel::random(&mut r), payload);
            a.observe(&p);
            u.observe(&p);
        }
        (a.finish_epoch(), u.finish_epoch())
    }

    #[test]
    fn aligned_roundtrip() {
        let (a, _) = digests();
        let wire = a.encode_wire();
        let (back, used) = AlignedDigest::decode_wire(&wire).unwrap();
        assert_eq!(used, wire.len());
        assert_eq!(back.bitmap, a.bitmap);
        assert_eq!(back.packets_seen, a.packets_seen);
        assert_eq!(back.packets_hashed, a.packets_hashed);
        assert_eq!(back.raw_bytes, a.raw_bytes);
    }

    #[test]
    fn unaligned_roundtrip() {
        let (_, u) = digests();
        let wire = u.encode_wire();
        let (back, used) = UnalignedDigest::decode_wire(&wire).unwrap();
        assert_eq!(used, wire.len());
        assert_eq!(back.arrays, u.arrays);
        assert_eq!(back.arrays_per_group, u.arrays_per_group);
        assert_eq!(back.packets_sampled, u.packets_sampled);
    }

    #[test]
    fn concatenated_frames_decode_in_sequence() {
        let (a, u) = digests();
        let mut stream = Vec::new();
        stream.extend_from_slice(&a.encode_wire());
        stream.extend_from_slice(&u.encode_wire());
        let (a2, used) = AlignedDigest::decode_wire(&stream).unwrap();
        let (u2, used2) = UnalignedDigest::decode_wire(&stream[used..]).unwrap();
        assert_eq!(used + used2, stream.len());
        assert_eq!(a2.bitmap, a.bitmap);
        assert_eq!(u2.arrays.len(), u.arrays.len());
    }

    #[test]
    fn wrong_magic_rejected() {
        let (a, u) = digests();
        assert!(matches!(
            UnalignedDigest::decode_wire(&a.encode_wire()),
            Err(WireError::BadMagic(_))
        ));
        assert!(matches!(
            AlignedDigest::decode_wire(&u.encode_wire()),
            Err(WireError::BadMagic(_))
        ));
    }

    #[test]
    fn truncations_rejected_everywhere() {
        let (a, u) = digests();
        for wire in [a.encode_wire(), u.encode_wire()] {
            for cut in [0usize, 3, 5, 12, wire.len() - 1] {
                let a_res = AlignedDigest::decode_wire(&wire[..cut]);
                let u_res = UnalignedDigest::decode_wire(&wire[..cut]);
                assert!(
                    a_res.is_err() && u_res.is_err(),
                    "cut at {cut} of {} decoded",
                    wire.len()
                );
            }
        }
    }

    #[test]
    fn malformed_group_count_rejected() {
        let (_, u) = digests();
        let mut wire = u.encode_wire().to_vec();
        // arrays_per_group lives at offset 29; set it to 3 (count is 40,
        // not a multiple of 3).
        wire[29] = 3;
        assert!(matches!(
            UnalignedDigest::decode_wire(&wire),
            Err(WireError::Malformed(_))
        ));
    }

    #[test]
    fn wire_is_compact() {
        // The binary frame must beat JSON by a wide margin (JSON encodes
        // words as decimal numbers in arrays).
        let (a, _) = digests();
        let wire_len = a.encode_wire().len();
        let json_len = serde_json::to_string(&a).unwrap().len();
        assert!(
            wire_len * 2 < json_len,
            "wire {wire_len} not much smaller than JSON {json_len}"
        );
    }
}

#[cfg(test)]
mod fuzz {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn decoders_never_panic_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
            let _ = AlignedDigest::decode_wire(&bytes);
            let _ = UnalignedDigest::decode_wire(&bytes);
        }

        #[test]
        fn decoders_never_panic_on_bitflips(pos in 0usize..200, val in any::<u8>()) {
            let mut r = {
                use rand::SeedableRng;
                rand::rngs::StdRng::seed_from_u64(1)
            };
            use rand::Rng as _;
            let mut col = crate::UnalignedCollector::new(crate::UnalignedConfig::small(2, 1, 1));
            for _ in 0..50 {
                let mut payload = vec![0u8; 536];
                r.fill(payload.as_mut_slice());
                col.observe(&dcs_traffic::Packet::new(
                    dcs_traffic::FlowLabel::random(&mut r),
                    payload,
                ));
            }
            let mut wire = col.finish_epoch().encode_wire().to_vec();
            if pos < wire.len() {
                wire[pos] ^= val;
            }
            let _ = UnalignedDigest::decode_wire(&wire);
        }
    }
}
