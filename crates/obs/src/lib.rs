//! `dcs-obs` — the observability substrate of the DCS analysis pipeline.
//!
//! Every layer of the pipeline (digest fusion, the aligned product
//! search, the unaligned graph stages, transport reassembly, the bitmap
//! kernels) reports into one [`MetricsRegistry`]: a thread-safe, zero-dep
//! registry of
//!
//! * monotonic **counters** ([`Counter`]) — events since process start
//!   (`stage_runs_total`, `ingest_excluded_total{fault=…}`);
//! * **gauges** ([`Gauge`]) — last-written values (`epoch_stage_ns{…}`,
//!   the per-epoch stage clocks the deprecated `EpochTimings` view is
//!   derived from);
//! * fixed-bucket **latency histograms** ([`Histogram`]) — power-of-two
//!   nanosecond buckets accumulating every stage span ever timed.
//!
//! [`StageTimer`] is the cheap span guard: it reads the monotonic clock
//! ([`std::time::Instant`]) on creation and records the elapsed
//! nanoseconds into a histogram (and optionally a gauge) when stopped or
//! dropped.
//!
//! Metric identity is `name` plus a small set of `label=value` pairs
//! (canonically sorted), rendered as `name{label=value,…}` — the
//! conventional families are `stage`, `pipeline`, `router_id` and
//! `kernel`. [`MetricsSnapshot`] captures the whole registry as a
//! deterministic (key-sorted), serde-serializable value with JSON export
//! ([`MetricsSnapshot::to_json_pretty`]) and snapshot-to-snapshot deltas
//! ([`MetricsSnapshot::delta_since`]) for per-epoch rates.
//!
//! The crate depends only on the workspace serde stand-ins — no clocks
//! beyond `std::time`, no allocator tricks, no platform code — so every
//! crate in the workspace can report into it without dependency cycles.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod registry;
mod snapshot;

pub use registry::{Counter, Gauge, Histogram, MetricsRegistry, StageTimer, HIST_BUCKETS};
pub use snapshot::{metric_key, CounterEntry, GaugeEntry, HistogramEntry, MetricsSnapshot};

#[cfg(test)]
mod proptests;
