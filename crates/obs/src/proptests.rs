//! Property tests: snapshot JSON round-trips losslessly and the delta
//! algebra is consistent for arbitrary metric contents.

use crate::{CounterEntry, GaugeEntry, HistogramEntry, MetricsSnapshot, HIST_BUCKETS};
use proptest::prelude::*;
use std::collections::BTreeMap;

/// Label-safe metric keys (no `{`, `}`, `,`, `=`), derived from an
/// integer seed — the vendored proptest has no regex string strategies.
fn arb_key() -> impl Strategy<Value = String> {
    (any::<u64>(), 0u32..4).prop_map(|(n, style)| match style {
        0 => format!("metric_{n:x}_total"),
        1 => format!("stage_ns{{pipeline=aligned,stage=s{}}}", n % 16),
        2 => format!("gauge.{}", n % 1000),
        _ => format!("k{n:x}"),
    })
}

fn arb_snapshot() -> impl Strategy<Value = MetricsSnapshot> {
    let scalars = |len| proptest::collection::vec((arb_key(), any::<u64>()), len);
    let hists = proptest::collection::vec(
        (
            arb_key(),
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
            proptest::collection::vec(any::<u64>(), HIST_BUCKETS..HIST_BUCKETS + 1),
        ),
        0..4,
    );
    (scalars(0..8), scalars(0..8), hists).prop_map(|(counters, gauges, hists)| {
        // Snapshots are key-sorted with unique keys; a BTreeMap restores
        // both invariants over the raw generated pairs.
        let counters: BTreeMap<String, u64> = counters.into_iter().collect();
        let gauges: BTreeMap<String, u64> = gauges.into_iter().collect();
        let hists: BTreeMap<String, (u64, u64, u64, u64, Vec<u64>)> = hists
            .into_iter()
            .map(|(key, count, sum, min, max, buckets)| (key, (count, sum, min, max, buckets)))
            .collect();
        MetricsSnapshot {
            counters: counters
                .into_iter()
                .map(|(key, value)| CounterEntry { key, value })
                .collect(),
            gauges: gauges
                .into_iter()
                .map(|(key, value)| GaugeEntry { key, value })
                .collect(),
            histograms: hists
                .into_iter()
                .map(|(key, (count, sum, min, max, buckets))| HistogramEntry {
                    key,
                    count,
                    sum,
                    min,
                    max,
                    buckets,
                })
                .collect(),
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Encode → decode is the identity for every snapshot, compact and
    /// pretty alike — u64 extremes included.
    #[test]
    fn snapshot_json_roundtrips(snap in arb_snapshot()) {
        let back = MetricsSnapshot::from_json(&snap.to_json()).unwrap();
        prop_assert_eq!(&back, &snap);
        let back_pretty = MetricsSnapshot::from_json(&snap.to_json_pretty()).unwrap();
        prop_assert_eq!(&back_pretty, &snap);
    }

    /// delta(self, self) zeroes every counter and histogram while keeping
    /// gauge readings.
    #[test]
    fn self_delta_is_zero_rates(snap in arb_snapshot()) {
        let d = snap.delta_since(&snap);
        prop_assert!(d.counters.iter().all(|c| c.value == 0));
        prop_assert!(d.histograms.iter().all(|h| h.count == 0 && h.sum == 0));
        prop_assert!(d.histograms.iter().all(|h| h.buckets.iter().all(|&b| b == 0)));
        prop_assert_eq!(d.gauges, snap.gauges);
    }

    /// delta against the empty snapshot is the identity on counters and
    /// histogram totals.
    #[test]
    fn delta_from_empty_is_identity(snap in arb_snapshot()) {
        let d = snap.delta_since(&MetricsSnapshot::default());
        prop_assert_eq!(d.counters, snap.counters);
        for (a, b) in d.histograms.iter().zip(&snap.histograms) {
            prop_assert_eq!(a.count, b.count);
            prop_assert_eq!(a.sum, b.sum);
            prop_assert_eq!(&a.buckets, &b.buckets);
        }
    }
}
