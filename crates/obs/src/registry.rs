//! The metric registry and its instrument handles.
//!
//! Handles ([`Counter`], [`Gauge`], [`Histogram`]) are `Arc`-backed
//! atomics: registration takes the registry lock once, after which every
//! update is a relaxed atomic operation — cheap enough for per-stage (and
//! even per-kernel-call) instrumentation on the analysis hot path.

use crate::snapshot::{metric_key, CounterEntry, GaugeEntry, HistogramEntry, MetricsSnapshot};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Instant;

/// Number of latency buckets per [`Histogram`]: bucket `i` counts
/// observations whose value has bit length `i` (i.e. `2^(i-1) ≤ v < 2^i`,
/// with bucket 0 holding zeros). 40 buckets cover every span up to
/// ~18 minutes in nanoseconds; longer spans clamp into the last bucket.
pub const HIST_BUCKETS: usize = 40;

/// A monotonic event counter.
#[derive(Debug, Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Increments by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increments by `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-value-wins gauge.
#[derive(Debug, Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Overwrites the value.
    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A fixed-bucket latency histogram (power-of-two nanosecond buckets)
/// with running count, sum and extrema.
#[derive(Debug)]
pub struct HistogramCore {
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
    buckets: [AtomicU64; HIST_BUCKETS],
}

/// Shared handle to one histogram in the registry.
#[derive(Debug, Clone)]
pub struct Histogram(Arc<HistogramCore>);

/// Bucket index of a value: its bit length, clamped to the fixed range.
#[inline]
fn bucket_of(v: u64) -> usize {
    ((u64::BITS - v.leading_zeros()) as usize).min(HIST_BUCKETS - 1)
}

impl Histogram {
    fn new() -> Self {
        Histogram(Arc::new(HistogramCore {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }))
    }

    /// Records one observation (nanoseconds by convention).
    #[inline]
    pub fn observe(&self, v: u64) {
        let c = &self.0;
        c.count.fetch_add(1, Ordering::Relaxed);
        c.sum.fetch_add(v, Ordering::Relaxed);
        c.min.fetch_min(v, Ordering::Relaxed);
        c.max.fetch_max(v, Ordering::Relaxed);
        c.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
    }

    /// Observations recorded so far.
    #[inline]
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of all observed values.
    #[inline]
    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }

    fn entry(&self, key: String) -> HistogramEntry {
        let c = &self.0;
        let count = c.count.load(Ordering::Relaxed);
        HistogramEntry {
            key,
            count,
            sum: c.sum.load(Ordering::Relaxed),
            min: if count == 0 {
                0
            } else {
                c.min.load(Ordering::Relaxed)
            },
            max: c.max.load(Ordering::Relaxed),
            buckets: c
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
        }
    }
}

/// A span guard over the monotonic clock: created at stage entry, it
/// records the elapsed nanoseconds into its histogram (and optional
/// gauge) when [`stopped`](StageTimer::stop) — or on drop, so early
/// returns and panicking stages are still accounted for.
#[derive(Debug)]
pub struct StageTimer {
    hist: Histogram,
    gauge: Option<Gauge>,
    start: Instant,
    armed: bool,
}

impl StageTimer {
    /// Starts a span recording into `hist`, mirroring the measured span
    /// into `gauge` (the "last epoch" view) when given.
    pub fn start(hist: Histogram, gauge: Option<Gauge>) -> Self {
        StageTimer {
            hist,
            gauge,
            start: Instant::now(),
            armed: true,
        }
    }

    /// Stops the span, records it, and returns the elapsed nanoseconds
    /// (floored at 1 ns so a recorded stage is never indistinguishable
    /// from one that never ran).
    pub fn stop(mut self) -> u64 {
        self.record()
    }

    fn record(&mut self) -> u64 {
        self.armed = false;
        let ns = (self.start.elapsed().as_nanos() as u64).max(1);
        self.hist.observe(ns);
        if let Some(g) = &self.gauge {
            g.set(ns);
        }
        ns
    }
}

impl Drop for StageTimer {
    fn drop(&mut self) {
        if self.armed {
            self.record();
        }
    }
}

#[derive(Debug, Default)]
struct RegistryInner {
    counters: BTreeMap<String, Counter>,
    gauges: BTreeMap<String, Gauge>,
    histograms: BTreeMap<String, Histogram>,
}

/// A thread-safe registry of counters, gauges and histograms keyed by
/// `name{label=value,…}` (labels canonically sorted; see [`metric_key`]).
///
/// Registration is idempotent: asking for the same (name, labels) pair
/// returns a handle to the same underlying instrument, so independent
/// layers can report into one family without coordination.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    inner: Mutex<RegistryInner>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Locks the registry, recovering from poisoning: the inner maps are
    /// only mutated by infallible inserts, so a poisoned lock (a panic
    /// elsewhere while a guard was live) leaves them structurally sound.
    fn lock(&self) -> MutexGuard<'_, RegistryInner> {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Gets or creates the counter `name{labels…}`.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        let key = metric_key(name, labels);
        self.lock()
            .counters
            .entry(key)
            .or_insert_with(|| Counter(Arc::new(AtomicU64::new(0))))
            .clone()
    }

    /// Gets or creates the gauge `name{labels…}`.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        let key = metric_key(name, labels);
        self.lock()
            .gauges
            .entry(key)
            .or_insert_with(|| Gauge(Arc::new(AtomicU64::new(0))))
            .clone()
    }

    /// Gets or creates the histogram `name{labels…}`.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Histogram {
        let key = metric_key(name, labels);
        self.lock()
            .histograms
            .entry(key)
            .or_insert_with(Histogram::new)
            .clone()
    }

    /// Starts a [`StageTimer`] recording into the histogram
    /// `name{labels…}` and mirroring into the gauge `gauge_name{labels…}`
    /// when given.
    pub fn stage_timer(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        gauge_name: Option<&str>,
    ) -> StageTimer {
        let hist = self.histogram(name, labels);
        let gauge = gauge_name.map(|g| self.gauge(g, labels));
        StageTimer::start(hist, gauge)
    }

    /// Captures every instrument into a deterministic, serializable
    /// snapshot (keys sorted; see [`MetricsSnapshot`]).
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.lock();
        MetricsSnapshot {
            counters: inner
                .counters
                .iter()
                .map(|(k, c)| CounterEntry {
                    key: k.clone(),
                    value: c.get(),
                })
                .collect(),
            gauges: inner
                .gauges
                .iter()
                .map(|(k, g)| GaugeEntry {
                    key: k.clone(),
                    value: g.get(),
                })
                .collect(),
            histograms: inner
                .histograms
                .iter()
                .map(|(k, h)| h.entry(k.clone()))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_share_identity() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("events_total", &[("stage", "fuse")]);
        let b = reg.counter("events_total", &[("stage", "fuse")]);
        a.inc();
        b.add(4);
        assert_eq!(a.get(), 5, "same (name, labels) must be one instrument");
        let other = reg.counter("events_total", &[("stage", "screen")]);
        assert_eq!(other.get(), 0);
    }

    #[test]
    fn gauges_are_last_value_wins() {
        let reg = MetricsRegistry::new();
        let g = reg.gauge("epoch_total_ns", &[]);
        g.set(10);
        g.set(3);
        assert_eq!(g.get(), 3);
    }

    #[test]
    fn histogram_buckets_and_extrema() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("lat", &[]);
        for v in [0u64, 1, 2, 3, 1024, u64::MAX] {
            h.observe(v);
        }
        assert_eq!(h.count(), 6);
        let e = h.entry("lat".into());
        assert_eq!(e.min, 0);
        assert_eq!(e.max, u64::MAX);
        assert_eq!(e.buckets[0], 1, "zero lands in bucket 0");
        assert_eq!(e.buckets[1], 1, "1 has bit length 1");
        assert_eq!(e.buckets[2], 2, "2 and 3 have bit length 2");
        assert_eq!(e.buckets[11], 1, "1024 has bit length 11");
        assert_eq!(e.buckets[HIST_BUCKETS - 1], 1, "huge values clamp");
        assert_eq!(e.buckets.iter().sum::<u64>(), e.count);
    }

    #[test]
    fn empty_histogram_reports_zero_min() {
        let reg = MetricsRegistry::new();
        let _ = reg.histogram("lat", &[]);
        let snap = reg.snapshot();
        assert_eq!(snap.histograms[0].min, 0);
        assert_eq!(snap.histograms[0].count, 0);
    }

    #[test]
    fn stage_timer_records_on_stop_and_on_drop() {
        let reg = MetricsRegistry::new();
        let ns = reg
            .stage_timer("stage_ns", &[], Some("epoch_stage_ns"))
            .stop();
        assert!(ns >= 1);
        {
            let _t = reg.stage_timer("stage_ns", &[], None);
        } // dropped unarmed -> still recorded
        let h = reg.histogram("stage_ns", &[]);
        assert_eq!(h.count(), 2);
        assert_eq!(reg.gauge("epoch_stage_ns", &[]).get(), ns);
    }

    #[test]
    fn registry_is_shareable_across_threads() {
        let reg = Arc::new(MetricsRegistry::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let reg = Arc::clone(&reg);
                std::thread::spawn(move || {
                    let c = reg.counter("spins_total", &[]);
                    for _ in 0..1000 {
                        c.inc();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(reg.counter("spins_total", &[]).get(), 4000);
    }
}
