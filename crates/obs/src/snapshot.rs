//! Deterministic, serializable captures of a [`MetricsRegistry`].
//!
//! [`MetricsRegistry`]: crate::MetricsRegistry

use serde::{Deserialize, Serialize};

/// Canonical key of one instrument: `name` alone when unlabeled,
/// otherwise `name{label=value,…}` with the labels sorted by label name.
/// Label names and values must not contain `{`, `}`, `,` or `=` — the
/// key is the identity, so the rendering must be injective.
pub fn metric_key(name: &str, labels: &[(&str, &str)]) -> String {
    debug_assert!(
        labels
            .iter()
            .flat_map(|(k, v)| [k, v])
            .all(|s| !s.contains(['{', '}', ',', '='])),
        "label parts must not contain key syntax"
    );
    if labels.is_empty() {
        return name.to_string();
    }
    let mut sorted: Vec<(&str, &str)> = labels.to_vec();
    sorted.sort_unstable();
    let body: Vec<String> = sorted.iter().map(|(k, v)| format!("{k}={v}")).collect();
    format!("{name}{{{}}}", body.join(","))
}

/// One counter in a snapshot.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CounterEntry {
    /// Canonical metric key (see [`metric_key`]).
    pub key: String,
    /// Counter value at capture time.
    pub value: u64,
}

/// One gauge in a snapshot.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GaugeEntry {
    /// Canonical metric key (see [`metric_key`]).
    pub key: String,
    /// Gauge value at capture time.
    pub value: u64,
}

/// One histogram in a snapshot.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramEntry {
    /// Canonical metric key (see [`metric_key`]).
    pub key: String,
    /// Observations recorded.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
    /// Smallest observation (0 when `count == 0`).
    pub min: u64,
    /// Largest observation.
    pub max: u64,
    /// Power-of-two buckets; `buckets[i]` counts observations of bit
    /// length `i` (see [`HIST_BUCKETS`](crate::HIST_BUCKETS)).
    pub buckets: Vec<u64>,
}

/// A point-in-time capture of every instrument in a registry.
///
/// Entries are sorted by key, so two snapshots of registries holding the
/// same values are structurally — and after JSON encoding, byte-for-byte
/// — identical regardless of registration order or thread interleaving.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// All counters, key-sorted.
    pub counters: Vec<CounterEntry>,
    /// All gauges, key-sorted.
    pub gauges: Vec<GaugeEntry>,
    /// All histograms, key-sorted.
    pub histograms: Vec<HistogramEntry>,
}

impl MetricsSnapshot {
    /// Value of the counter with the given canonical key.
    pub fn counter(&self, key: &str) -> Option<u64> {
        self.counters.iter().find(|e| e.key == key).map(|e| e.value)
    }

    /// Value of the gauge with the given canonical key.
    pub fn gauge(&self, key: &str) -> Option<u64> {
        self.gauges.iter().find(|e| e.key == key).map(|e| e.value)
    }

    /// The histogram with the given canonical key.
    pub fn histogram(&self, key: &str) -> Option<&HistogramEntry> {
        self.histograms.iter().find(|e| e.key == key)
    }

    /// Compact JSON rendering. Snapshots hold only integers and metric
    /// keys, so encoding cannot fail.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("snapshot holds only integers and strings")
    }

    /// Pretty-printed JSON rendering (the `--metrics-json` file format).
    pub fn to_json_pretty(&self) -> String {
        serde_json::to_string_pretty(self).expect("snapshot holds only integers and strings")
    }

    /// Parses a snapshot back from its JSON rendering.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }

    /// The change from `earlier` to `self` — the per-epoch rate view.
    ///
    /// Counters and histogram counts/sums/buckets subtract (saturating,
    /// so a restarted registry yields zeros rather than wrapping); keys
    /// absent from `earlier` keep their full value. Gauges are
    /// last-value instruments and keep `self`'s reading, as do histogram
    /// extrema (`min`/`max` are lifetime extremes — a delta cannot
    /// reconstruct interval extrema from totals).
    pub fn delta_since(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .iter()
                .map(|e| CounterEntry {
                    key: e.key.clone(),
                    value: e.value.saturating_sub(earlier.counter(&e.key).unwrap_or(0)),
                })
                .collect(),
            gauges: self.gauges.clone(),
            histograms: self
                .histograms
                .iter()
                .map(|e| {
                    let base = earlier.histogram(&e.key);
                    let bucket =
                        |i: usize| base.and_then(|b| b.buckets.get(i)).copied().unwrap_or(0);
                    HistogramEntry {
                        key: e.key.clone(),
                        count: e.count.saturating_sub(base.map_or(0, |b| b.count)),
                        sum: e.sum.saturating_sub(base.map_or(0, |b| b.sum)),
                        min: e.min,
                        max: e.max,
                        buckets: e
                            .buckets
                            .iter()
                            .enumerate()
                            .map(|(i, &v)| v.saturating_sub(bucket(i)))
                            .collect(),
                    }
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MetricsRegistry;

    #[test]
    fn metric_keys_are_canonical() {
        assert_eq!(metric_key("total", &[]), "total");
        assert_eq!(
            metric_key("stage_ns", &[("stage", "fuse"), ("pipeline", "aligned")]),
            "stage_ns{pipeline=aligned,stage=fuse}",
            "labels sort by name"
        );
        assert_eq!(
            metric_key("stage_ns", &[("pipeline", "aligned"), ("stage", "fuse")]),
            metric_key("stage_ns", &[("stage", "fuse"), ("pipeline", "aligned")]),
        );
    }

    #[test]
    fn snapshot_is_key_sorted_and_json_deterministic() {
        let mk = |order_flip: bool| {
            let reg = MetricsRegistry::new();
            let names = if order_flip {
                ["zeta", "alpha"]
            } else {
                ["alpha", "zeta"]
            };
            for n in names {
                reg.counter(n, &[]).add(7);
            }
            reg.gauge("g", &[("kernel", "avx2")]).set(3);
            reg.snapshot()
        };
        let (a, b) = (mk(false), mk(true));
        assert_eq!(a, b);
        assert_eq!(a.to_json_pretty(), b.to_json_pretty());
        assert_eq!(a.counters[0].key, "alpha");
    }

    #[test]
    fn json_roundtrip_preserves_everything() {
        let reg = MetricsRegistry::new();
        reg.counter("c", &[("stage", "peel")]).add(9);
        reg.gauge("g", &[]).set(u64::MAX);
        reg.histogram("h", &[]).observe(1024);
        let snap = reg.snapshot();
        let back = MetricsSnapshot::from_json(&snap.to_json_pretty()).unwrap();
        assert_eq!(back, snap);
        assert_eq!(back.gauge("g"), Some(u64::MAX), "u64 must be exact");
    }

    #[test]
    fn delta_subtracts_counters_and_histograms() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("epochs_total", &[]);
        let h = reg.histogram("lat", &[]);
        c.add(2);
        h.observe(8);
        let early = reg.snapshot();
        c.add(3);
        h.observe(8);
        h.observe(16);
        reg.gauge("g", &[]).set(5);
        let late = reg.snapshot();
        let d = late.delta_since(&early);
        assert_eq!(d.counter("epochs_total"), Some(3));
        let dh = d.histogram("lat").unwrap();
        assert_eq!(dh.count, 2);
        assert_eq!(dh.sum, 24);
        assert_eq!(d.gauge("g"), Some(5), "gauges keep the later reading");
        // A key the earlier snapshot never saw keeps its full value.
        assert_eq!(
            late.delta_since(&MetricsSnapshot::default())
                .counter("epochs_total"),
            Some(5)
        );
    }

    #[test]
    fn delta_saturates_after_registry_restart() {
        let a = {
            let reg = MetricsRegistry::new();
            reg.counter("c", &[]).add(100);
            reg.snapshot()
        };
        let b = {
            let reg = MetricsRegistry::new();
            reg.counter("c", &[]).add(10);
            reg.snapshot()
        };
        assert_eq!(b.delta_since(&a).counter("c"), Some(0));
    }
}
