//! # dcs — Distributed Collaborative Streaming
//!
//! Facade crate re-exporting the full public API of the DCS workspace, a
//! reproduction of *"Scalable and Efficient Data Streaming Algorithms for
//! Detecting Common Content in Internet Traffic"* (ICDE 2006).
//!
//! See the individual crates for details:
//! [`dcs_bitmap`], [`dcs_hash`], [`dcs_stats`], [`dcs_traffic`],
//! [`dcs_graph`], [`dcs_collect`], [`dcs_aligned`], [`dcs_unaligned`],
//! [`dcs_core`], [`dcs_sim`], [`dcs_obs`].

pub use dcs_aligned as aligned;
pub use dcs_bitmap as bitmap;
pub use dcs_collect as collect;
pub use dcs_core as core;
pub use dcs_graph as graph;
pub use dcs_hash as hash;
pub use dcs_obs as obs;
pub use dcs_sim as sim;
pub use dcs_stats as stats;
pub use dcs_traffic as traffic;
pub use dcs_unaligned as unaligned;

pub use dcs_core::prelude;
