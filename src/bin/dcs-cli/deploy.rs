//! `dcs-cli serve` / `dcs-cli monitor`: the analysis centre and
//! monitoring points as real processes over localhost (or LAN) sockets.
//!
//! ```text
//! dcs-cli serve   --print-config              # JSON config template
//! dcs-cli serve   [--config serve.json] [--bind 127.0.0.1:7400]
//!                 [--transport udp|tcp] [--routers N] [--epochs N]
//!                 [--no-sketch-seed] [--resume ckpt.dcsk]
//! dcs-cli monitor [--config monitor.json] [--center 127.0.0.1:7400]
//!                 [--router N] [--epochs N] [--infected]
//!                 [--sketch-cap N] [--sketch-domain content|drdos|elephant]
//! ```
//!
//! The centre runs one [`EpochCollector`] epoch at a time over a
//! [`CenterSocket`], analyses each collected epoch, appends a JSONL
//! outcome line to `report_path`, and snapshots metrics + a DCSK
//! checkpoint on a periodic tick. SIGINT/SIGTERM flush a final
//! checkpoint and metrics snapshot before exit; a later `--resume`
//! continues the interrupted epoch from that checkpoint, with monitor
//! resend buffers replaying the missing chunks over the socket.
//!
//! Monitors generate deterministic synthetic traffic per epoch (same
//! scheme as the soak harnesses: traffic from `seed`, planted content
//! from the shared `content_seed`), so two runs with the same configs
//! produce byte-identical digests — the property the restart tests pin.

use crate::{parse_or, take_flag, CliResult};
use dcs::core::clock::{Clock, TickClock};
use dcs::core::net::{
    run_center_epoch, run_monitor_epoch, CenterEpochEnd, CenterSocket, ImpairmentConfig,
    ImpairmentShim, MonitorEpochConfig, MonitorEpochEnd, MonitorSocket, Transport,
};
use dcs::core::prelude::*;
use dcs::core::transport::DATAGRAM_SAFE_PAYLOAD;
use dcs::sim::tiered::detection_fingerprint;
use dcs::traffic::gen::{generate_epoch, BackgroundConfig, SizeMix};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::io::Write as _;
use std::time::Duration;

/// Per-epoch seed derivation shared by `serve`'s reference docs and
/// `monitor`'s traffic generator (the soak harnesses use the same step).
const EPOCH_SEED_STEP: u64 = 0x9E37_79B9_7F4A_7C15;

// ---------------------------------------------------------------------
// Signal handling (serve-side graceful shutdown)
// ---------------------------------------------------------------------

#[cfg(unix)]
mod sig {
    use std::sync::atomic::{AtomicBool, Ordering};

    pub static SHUTDOWN: AtomicBool = AtomicBool::new(false);

    extern "C" fn handle(_sig: i32) {
        SHUTDOWN.store(true, Ordering::SeqCst);
    }

    /// Routes SIGINT (2) and SIGTERM (15) to a shutdown flag the serve
    /// loop polls, so both signals flush state instead of killing the
    /// process mid-write.
    #[allow(clippy::fn_to_numeric_cast, clippy::fn_to_numeric_cast_any)]
    pub fn install() {
        unsafe extern "C" {
            fn signal(signum: i32, handler: usize) -> usize;
        }
        unsafe {
            signal(2, handle as extern "C" fn(i32) as usize);
            signal(15, handle as extern "C" fn(i32) as usize);
        }
    }

    pub fn requested() -> bool {
        SHUTDOWN.load(Ordering::SeqCst)
    }
}

#[cfg(not(unix))]
mod sig {
    pub fn install() {}
    pub fn requested() -> bool {
        false
    }
}

// ---------------------------------------------------------------------
// Configs (JSON files via --config; flags override the loaded values)
// ---------------------------------------------------------------------

/// `dcs-cli serve` settings. Empty string paths disable that output.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServeConfig {
    /// Bind address, e.g. `127.0.0.1:7400` (port 0 picks one).
    pub bind: String,
    /// `udp` (primary) or `tcp` (stream fallback).
    pub transport: String,
    /// Router ids `0..routers` are expected each epoch.
    pub routers: usize,
    /// Epochs to serve; 0 = until SIGINT/SIGTERM.
    pub epochs: usize,
    /// Straggler deadline in ticks.
    pub deadline_ticks: u64,
    /// Wait for every router instead of cutting at the deadline.
    pub wait_all: bool,
    /// Minimum surviving-router quorum at analysis (0 = no floor).
    pub min_quorum: usize,
    /// Real duration of one tick, in microseconds.
    pub tick_micros: u64,
    /// Aligned bitmap width the monitors use (analysis shape).
    pub aligned_bits: usize,
    /// Flow-split groups per router (analysis shape).
    pub groups_per_router: usize,
    /// DCSK checkpoint file; rewritten periodically and on shutdown.
    pub checkpoint_path: String,
    /// Metrics JSON snapshot file; rewritten with the checkpoint.
    pub metrics_path: String,
    /// JSONL epoch-outcome log (appended).
    pub report_path: String,
    /// Ticks between periodic checkpoint + metrics snapshots.
    pub snapshot_every_ticks: u64,
    /// Ticks before a session's first retransmit NACK fires.
    pub nack_base_ticks: u64,
    /// Cap on the exponential NACK backoff, in ticks.
    pub nack_cap_ticks: u64,
    /// NACK rounds before a session gives up. Under `wait_all` this is
    /// the centre's whole patience budget — it must cover monitor
    /// restarts and our own checkpoint-resume gaps, so the default is
    /// deliberately generous (the `deadline` policy cuts at the deadline
    /// regardless).
    pub nack_retries: u32,
    /// Collector retransmit seed.
    pub seed: u64,
    /// Seed the aligned search from fused sidecar sketches (advisory
    /// only — verdicts are identical either way).
    pub sketch_seed: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            bind: "127.0.0.1:7400".into(),
            transport: "udp".into(),
            routers: 24,
            epochs: 0,
            deadline_ticks: 512,
            wait_all: false,
            min_quorum: 0,
            tick_micros: 1_000,
            aligned_bits: 1 << 14,
            groups_per_router: 4,
            checkpoint_path: String::new(),
            metrics_path: String::new(),
            report_path: String::new(),
            snapshot_every_ticks: 64,
            nack_base_ticks: 8,
            nack_cap_ticks: 512,
            nack_retries: 1_000,
            seed: 42,
            sketch_seed: true,
        }
    }
}

/// `dcs-cli monitor` settings.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MonitorCliConfig {
    /// The centre's address, e.g. `127.0.0.1:7400`.
    pub center: String,
    /// `udp` or `tcp`; must match the centre.
    pub transport: String,
    /// This monitoring point's router id.
    pub router_id: u64,
    /// Epochs to ship; 0 = until the centre says shutdown.
    pub epochs: usize,
    /// Background packets per epoch.
    pub packets: usize,
    /// Background flows per epoch.
    pub flows: usize,
    /// Packets of planted common content (0 = clean traffic).
    pub content_packets: usize,
    /// Seed of the planted content — share it across infected monitors
    /// so they all carry the *same* object.
    pub content_seed: u64,
    /// Background traffic seed (vary per router).
    pub seed: u64,
    /// Digest hash-salt seed — must match every other monitor.
    pub digest_seed: u64,
    /// Aligned bitmap width.
    pub aligned_bits: usize,
    /// Flow-split groups.
    pub groups: usize,
    /// Sidecar-sketch capacity (0 = no sketch; bundles stay on the
    /// pre-artifact wire format).
    pub sketch_cap: usize,
    /// Sketch domain: `content`, `drdos` or `elephant`. Must match the
    /// other monitors so the centre can merge the artifacts.
    pub sketch_domain: String,
    /// Chunk payload bound; the default stays datagram-safe.
    pub max_payload: usize,
    /// Real duration of one tick, in microseconds.
    pub tick_micros: u64,
    /// Ticks of silence before re-pushing unacked chunks.
    pub resend_after: u64,
    /// Resend backoff cap, in ticks.
    pub max_backoff: u64,
    /// Ticks of no ack progress before abandoning an epoch.
    pub give_up: u64,
    /// Outgoing impairment ‰ (testing): drop.
    pub impair_drop: u16,
    /// Outgoing impairment ‰: duplicate.
    pub impair_duplicate: u16,
    /// Outgoing impairment ‰: reorder.
    pub impair_reorder: u16,
    /// Outgoing impairment ‰: corrupt.
    pub impair_corrupt: u16,
    /// Impairment decision seed.
    pub impair_seed: u64,
}

impl Default for MonitorCliConfig {
    fn default() -> Self {
        MonitorCliConfig {
            center: "127.0.0.1:7400".into(),
            transport: "udp".into(),
            router_id: 0,
            epochs: 0,
            packets: 800,
            flows: 200,
            content_packets: 0,
            content_seed: 1,
            seed: 0,
            digest_seed: 7,
            aligned_bits: 1 << 14,
            groups: 4,
            sketch_cap: 0,
            sketch_domain: "content".into(),
            max_payload: DATAGRAM_SAFE_PAYLOAD,
            tick_micros: 1_000,
            resend_after: 64,
            max_backoff: 1_024,
            give_up: 60_000,
            impair_drop: 0,
            impair_duplicate: 0,
            impair_reorder: 0,
            impair_corrupt: 0,
            impair_seed: 0,
        }
    }
}

/// One line of the serve report JSONL.
#[derive(Debug, Serialize)]
struct ReportLine {
    epoch: u64,
    outcome: String,
    detection: String,
    accepted: usize,
    /// Accepted bundles that shipped a sketch artifact.
    sketch_artifacts: usize,
    /// Artifacts merged into the fused epoch sketch.
    sketch_merged: usize,
    /// Total sketch payload bytes across the epoch.
    sketch_bytes: u64,
    /// Columns the fused sketch seeded into the aligned search.
    sketch_seed_columns: Vec<usize>,
}

fn write_atomic(path: &str, bytes: &[u8]) -> std::io::Result<()> {
    let tmp = format!("{path}.tmp");
    std::fs::write(&tmp, bytes)?;
    std::fs::rename(&tmp, path)
}

fn append_line(path: &str, line: &str) -> std::io::Result<()> {
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    writeln!(f, "{line}")
}

// ---------------------------------------------------------------------
// serve
// ---------------------------------------------------------------------

/// Runs the analysis centre as a socket process.
pub fn serve(args: &[String]) -> CliResult {
    let mut args = args.to_vec();
    if args.iter().any(|a| a == "--print-config") {
        println!("{}", serde_json::to_string_pretty(&ServeConfig::default())?);
        return Ok(());
    }
    let mut cfg: ServeConfig = match take_flag(&mut args, "--config") {
        Some(path) => serde_json::from_str(&std::fs::read_to_string(path)?)?,
        None => ServeConfig::default(),
    };
    if let Some(v) = take_flag(&mut args, "--bind") {
        cfg.bind = v;
    }
    if let Some(v) = take_flag(&mut args, "--transport") {
        cfg.transport = v;
    }
    cfg.routers = parse_or(take_flag(&mut args, "--routers"), cfg.routers)?;
    cfg.epochs = parse_or(take_flag(&mut args, "--epochs"), cfg.epochs)?;
    cfg.min_quorum = parse_or(take_flag(&mut args, "--quorum"), cfg.min_quorum)?;
    cfg.wait_all = parse_or(take_flag(&mut args, "--wait-all"), cfg.wait_all)?;
    if crate::take_switch(&mut args, "--no-sketch-seed") {
        cfg.sketch_seed = false;
    }
    if let Some(v) = take_flag(&mut args, "--checkpoint") {
        cfg.checkpoint_path = v;
    }
    if let Some(v) = take_flag(&mut args, "--metrics-json") {
        cfg.metrics_path = v;
    }
    if let Some(v) = take_flag(&mut args, "--report") {
        cfg.report_path = v;
    }
    let resume_path = take_flag(&mut args, "--resume");
    if !args.is_empty() {
        return Err(format!("serve: unrecognised arguments {args:?}").into());
    }

    sig::install();
    let transport: Transport = cfg.transport.parse()?;
    let clock = TickClock::new(Duration::from_micros(cfg.tick_micros.max(1)));
    let metrics = MetricsRegistry::new();
    let mut sock = CenterSocket::bind(cfg.bind.as_str(), transport)?;
    // Port 0 callers (tests) learn the actual address from this line.
    println!(
        "serve: listening on {} ({})",
        sock.local_addr()?,
        cfg.transport
    );

    let collector_cfg = CollectorConfig {
        deadline: cfg.deadline_ticks,
        straggler: if cfg.wait_all {
            StragglerPolicy::WaitAll
        } else {
            StragglerPolicy::Deadline
        },
        session: SessionConfig {
            base_backoff: cfg.nack_base_ticks,
            max_backoff: cfg.nack_cap_ticks.max(cfg.nack_base_ticks),
            max_retries: cfg.nack_retries,
            ..SessionConfig::default()
        },
    };
    let mut acfg = AnalysisConfig::for_groups((cfg.routers * cfg.groups_per_router).max(2));
    if cfg.min_quorum > 0 {
        acfg = acfg.with_min_quorum(cfg.min_quorum);
    }
    acfg.search.n_prime = 400.min(cfg.aligned_bits);
    acfg.search.hopefuls = 300.min(cfg.aligned_bits);
    acfg = acfg.with_sketch_seed(cfg.sketch_seed);
    let center = AnalysisCenter::new(acfg);

    // Resume an interrupted epoch from its DCSK checkpoint, or start
    // fresh at epoch 0.
    let mut collector = match &resume_path {
        Some(path) => {
            let bytes = std::fs::read(path)?;
            let c = EpochCollector::resume(&bytes, collector_cfg, cfg.seed, clock.now())?;
            println!(
                "serve: resumed epoch {} from {path} ({} sessions complete)",
                c.epoch_id(),
                c.complete_sessions()
            );
            c
        }
        None => EpochCollector::new(
            0,
            (0..cfg.routers as u64).collect::<Vec<_>>(),
            collector_cfg,
            cfg.seed,
            clock.now(),
        ),
    };
    let mut served = 0usize;

    loop {
        let epoch_id = collector.epoch_id();
        let mut last_snapshot = clock.now();
        let end = run_center_epoch(&mut sock, &mut collector, &clock, &metrics, |c| {
            if sig::requested() {
                return true;
            }
            let now = clock.now();
            if cfg.snapshot_every_ticks > 0
                && now.saturating_sub(last_snapshot) >= cfg.snapshot_every_ticks
            {
                last_snapshot = now;
                snapshot_state(&cfg, c, &metrics, &center);
            }
            false
        });
        match end {
            CenterEpochEnd::Aborted => {
                // Graceful shutdown: flush the final checkpoint and
                // metrics snapshot before exiting.
                snapshot_state(&cfg, &collector, &metrics, &center);
                println!(
                    "serve: shutdown at epoch {epoch_id} ({} sessions complete); state flushed",
                    collector.complete_sessions()
                );
                return Ok(());
            }
            CenterEpochEnd::Collected(epoch) => {
                let line = analyse_epoch(&center, &epoch);
                println!(
                    "serve: epoch {epoch_id} -> {} (accepted {})",
                    line.outcome, line.accepted
                );
                if !cfg.report_path.is_empty() {
                    append_line(&cfg.report_path, &serde_json::to_string(&line)?)?;
                }
                snapshot_state(&cfg, &collector, &metrics, &center);
                served += 1;
                if cfg.epochs > 0 && served >= cfg.epochs {
                    sock.broadcast(
                        |router_id| dcs::core::net::ControlFrame::Shutdown { router_id },
                        &metrics,
                    );
                    println!("serve: {served} epochs served, exiting");
                    return Ok(());
                }
                collector = EpochCollector::new(
                    epoch_id + 1,
                    (0..cfg.routers as u64).collect::<Vec<_>>(),
                    collector_cfg,
                    cfg.seed,
                    clock.now(),
                );
            }
        }
        if sig::requested() {
            snapshot_state(&cfg, &collector, &metrics, &center);
            println!("serve: shutdown between epochs; state flushed");
            return Ok(());
        }
    }
}

fn analyse_epoch(center: &AnalysisCenter, epoch: &CollectedEpoch) -> ReportLine {
    match center.analyze_epoch_collected(epoch) {
        Ok(report) => ReportLine {
            epoch: epoch.epoch_id,
            outcome: "report".into(),
            detection: detection_fingerprint(&report),
            accepted: report.ingest.accepted.len(),
            sketch_artifacts: report.sketch.artifacts,
            sketch_merged: report.sketch.merged,
            sketch_bytes: report.sketch.payload_bytes,
            sketch_seed_columns: report.sketch.seed_columns.clone(),
        },
        Err(IngestError::QuorumTooSmall { required, report }) => ReportLine {
            epoch: epoch.epoch_id,
            outcome: format!("quorum_too_small(required {required})"),
            detection: String::new(),
            accepted: report.accepted.len(),
            sketch_artifacts: 0,
            sketch_merged: 0,
            sketch_bytes: 0,
            sketch_seed_columns: Vec::new(),
        },
        Err(IngestError::NoDigests) => ReportLine {
            epoch: epoch.epoch_id,
            outcome: "no_digests".into(),
            detection: String::new(),
            accepted: 0,
            sketch_artifacts: 0,
            sketch_merged: 0,
            sketch_bytes: 0,
            sketch_seed_columns: Vec::new(),
        },
    }
}

/// Writes the DCSK checkpoint and a combined socket + centre metrics
/// snapshot (both atomically; both optional).
fn snapshot_state(
    cfg: &ServeConfig,
    collector: &EpochCollector,
    metrics: &MetricsRegistry,
    center: &AnalysisCenter,
) {
    if !cfg.checkpoint_path.is_empty() {
        if let Err(e) = write_atomic(&cfg.checkpoint_path, &collector.checkpoint()) {
            eprintln!("serve: checkpoint write failed: {e}");
        }
    }
    if !cfg.metrics_path.is_empty() {
        let combined = format!(
            "{{\"socket\":{},\"center\":{}}}\n",
            metrics.snapshot().to_json_pretty(),
            center.metrics().to_json_pretty()
        );
        if let Err(e) = write_atomic(&cfg.metrics_path, combined.as_bytes()) {
            eprintln!("serve: metrics write failed: {e}");
        }
    }
}

// ---------------------------------------------------------------------
// monitor
// ---------------------------------------------------------------------

/// Runs one monitoring point as a socket process.
pub fn monitor(args: &[String]) -> CliResult {
    let mut args = args.to_vec();
    if args.iter().any(|a| a == "--print-config") {
        println!(
            "{}",
            serde_json::to_string_pretty(&MonitorCliConfig::default())?
        );
        return Ok(());
    }
    let mut cfg: MonitorCliConfig = match take_flag(&mut args, "--config") {
        Some(path) => serde_json::from_str(&std::fs::read_to_string(path)?)?,
        None => MonitorCliConfig::default(),
    };
    if let Some(v) = take_flag(&mut args, "--center") {
        cfg.center = v;
    }
    if let Some(v) = take_flag(&mut args, "--transport") {
        cfg.transport = v;
    }
    cfg.router_id = parse_or(take_flag(&mut args, "--router"), cfg.router_id)?;
    cfg.epochs = parse_or(take_flag(&mut args, "--epochs"), cfg.epochs)?;
    cfg.seed = parse_or(take_flag(&mut args, "--seed"), cfg.router_id)?;
    cfg.sketch_cap = parse_or(take_flag(&mut args, "--sketch-cap"), cfg.sketch_cap)?;
    if let Some(v) = take_flag(&mut args, "--sketch-domain") {
        cfg.sketch_domain = v;
    }
    // `--infected` plants the shared content object into this monitor's
    // traffic at the soak's standard 30 packets.
    if let Some(pos) = args.iter().position(|a| a == "--infected") {
        args.remove(pos);
        cfg.content_packets = 30;
    }
    if !args.is_empty() {
        return Err(format!("monitor: unrecognised arguments {args:?}").into());
    }

    sig::install();
    let transport: Transport = cfg.transport.parse()?;
    let clock = TickClock::new(Duration::from_micros(cfg.tick_micros.max(1)));
    let metrics = MetricsRegistry::new();
    let mut sock = MonitorSocket::connect(cfg.center.as_str(), transport)?;
    let impair = ImpairmentConfig {
        drop_per_mille: cfg.impair_drop,
        duplicate_per_mille: cfg.impair_duplicate,
        reorder_per_mille: cfg.impair_reorder,
        corrupt_per_mille: cfg.impair_corrupt,
    };
    if impair != ImpairmentConfig::perfect() {
        sock.set_shim(ImpairmentShim::new(impair, cfg.impair_seed));
    }

    let mut mcfg = MonitorConfig::small(cfg.digest_seed, cfg.aligned_bits, cfg.groups);
    if cfg.sketch_cap > 0 {
        mcfg = mcfg.with_sketch(crate::sketch_spec(cfg.sketch_cap, &cfg.sketch_domain)?);
    }
    let mut mp = MonitoringPoint::new(cfg.router_id as usize, &mcfg);
    println!("monitor {}: shipping to {}", cfg.router_id, cfg.center);

    loop {
        if sig::requested() {
            return Ok(());
        }
        let epoch_id = mp.epochs_finished();
        if cfg.epochs > 0 && epoch_id as usize >= cfg.epochs {
            println!(
                "monitor {}: {} epochs shipped, exiting",
                cfg.router_id, epoch_id
            );
            return Ok(());
        }
        let epoch_seed = cfg
            .seed
            .wrapping_add(epoch_id.wrapping_mul(EPOCH_SEED_STEP));
        let mut rng = StdRng::seed_from_u64(epoch_seed);
        let mut traffic = generate_epoch(
            &mut rng,
            &BackgroundConfig {
                packets: cfg.packets,
                flows: cfg.flows.max(1),
                zipf_exponent: 1.0,
                size_mix: SizeMix::constant(536),
            },
        );
        if cfg.content_packets > 0 {
            // The content object derives only from (content_seed, epoch),
            // so every infected monitor plants the same bytes.
            let mut content_rng = StdRng::seed_from_u64(cfg.content_seed.wrapping_add(epoch_id));
            let object =
                ContentObject::random_with_packets(&mut content_rng, cfg.content_packets, 536);
            Planting::aligned(object, 536).plant_into(&mut rng, &mut traffic);
        }
        mp.observe_all(&traffic);
        let chunks = mp.finish_epoch_chunks(cfg.max_payload)?;
        let end = run_monitor_epoch(
            &mut sock,
            &chunks,
            &MonitorEpochConfig {
                router_id: cfg.router_id,
                epoch_id,
                resend_after: cfg.resend_after,
                max_backoff: cfg.max_backoff,
                give_up: cfg.give_up,
            },
            &clock,
            &metrics,
        );
        match end {
            MonitorEpochEnd::Delivered => {
                println!(
                    "monitor {}: epoch {epoch_id} delivered ({} chunks)",
                    cfg.router_id,
                    chunks.len()
                );
            }
            MonitorEpochEnd::TimedOut => {
                eprintln!(
                    "monitor {}: epoch {epoch_id} abandoned after {} silent ticks",
                    cfg.router_id, cfg.give_up
                );
            }
            MonitorEpochEnd::Shutdown => {
                println!("monitor {}: centre sent shutdown", cfg.router_id);
                return Ok(());
            }
        }
    }
}
