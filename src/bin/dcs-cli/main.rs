//! `dcs-cli` — command-line front end for the DCS toolchain.
//!
//! ```text
//! dcs-cli gen-trace <out.trace> [--packets N] [--flows N] [--zipf S]
//!                   [--seed N] [--plant g,size[,unaligned]]
//! dcs-cli collect   <in.trace> --router N [--seed N] [--bits N]
//!                   [--groups N] [--sketch-cap N]
//!                   [--sketch-domain content|drdos|elephant]
//!                   [--out digest.json]
//! dcs-cli analyze   <digest.json>... [--threshold N] [--no-sketch-seed]
//!                   [--metrics-json path]
//! dcs-cli serve     [--config serve.json] [--bind addr] [--resume ckpt] …
//! dcs-cli monitor   [--config monitor.json] [--center addr] [--router N] …
//! dcs-cli demo
//! ```
//!
//! `gen-trace` writes a synthetic trace (optionally with a planted common
//! content); `collect` plays a monitoring point over a trace and emits the
//! digest bundle as JSON; `analyze` fuses digest files and prints the
//! epoch report (`--metrics-json` additionally dumps the centre's
//! per-stage metrics snapshot); `serve`/`monitor` run the analysis centre
//! and monitoring points as real socket processes (see [`deploy`]).
//! Argument parsing is deliberately dependency-free.

mod deploy;

use dcs::core::prelude::*;
use dcs::traffic::gen::{generate_epoch, BackgroundConfig, SizeMix};
use dcs::traffic::trace::{TraceReader, TraceWriter};
use std::fs::File;
use std::io::{BufReader, BufWriter, Write as _};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("gen-trace") => gen_trace(&args[1..]),
        Some("collect") => collect(&args[1..]),
        Some("analyze") => analyze(&args[1..]),
        Some("serve") => deploy::serve(&args[1..]),
        Some("monitor") => deploy::monitor(&args[1..]),
        Some("config") => print_default_config(),
        Some("demo") => demo(),
        _ => {
            eprintln!(
                "usage: dcs-cli <gen-trace|collect|analyze|serve|monitor|demo> …\n\
                 see the crate docs or run each subcommand with wrong args \
                 for its usage line"
            );
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

type CliResult = Result<(), Box<dyn std::error::Error>>;

/// Pulls `--name value` out of an argument list; returns the remainder.
fn take_flag(args: &mut Vec<String>, name: &str) -> Option<String> {
    let pos = args.iter().position(|a| a == name)?;
    if pos + 1 >= args.len() {
        return None;
    }
    let value = args.remove(pos + 1);
    args.remove(pos);
    Some(value)
}

fn parse_or<T: std::str::FromStr>(v: Option<String>, default: T) -> Result<T, String> {
    match v {
        None => Ok(default),
        Some(s) => s.parse().map_err(|_| format!("bad numeric value {s:?}")),
    }
}

/// Removes a bare `--name` switch, returning whether it was present.
fn take_switch(args: &mut Vec<String>, name: &str) -> bool {
    match args.iter().position(|a| a == name) {
        Some(pos) => {
            args.remove(pos);
            true
        }
        None => false,
    }
}

/// Builds the sidecar-sketch spec from `--sketch-cap`/`--sketch-domain`
/// values (cap 0 = disabled, the wire-compatible default).
fn sketch_spec(cap: usize, domain: &str) -> Result<SketchSpec, String> {
    Ok(match domain {
        "content" => SketchSpec::heavy_content(cap),
        "drdos" => SketchSpec::drdos(cap),
        "elephant" => SketchSpec::elephant_flows(cap),
        other => {
            return Err(format!(
                "unknown sketch domain {other:?} (expected content|drdos|elephant)"
            ))
        }
    })
}

fn gen_trace(args: &[String]) -> CliResult {
    let mut args = args.to_vec();
    let packets = parse_or(take_flag(&mut args, "--packets"), 20_000usize)?;
    let flows = parse_or(take_flag(&mut args, "--flows"), packets / 10)?;
    let zipf = parse_or(take_flag(&mut args, "--zipf"), 1.0f64)?;
    let seed = parse_or(take_flag(&mut args, "--seed"), 0u64)?;
    let plant_spec = take_flag(&mut args, "--plant");
    // The planted object is generated from its own seed so different
    // routers (different --seed) can still carry the *same* content.
    let content_seed = parse_or(take_flag(&mut args, "--content-seed"), 1u64)?;
    let [out] = args.as_slice() else {
        return Err("usage: gen-trace <out.trace> [--packets N] [--flows N] \
                    [--zipf S] [--seed N] [--content-seed N] \
                    [--plant g,size[,unaligned]]"
            .into());
    };

    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut traffic = generate_epoch(
        &mut rng,
        &BackgroundConfig {
            packets,
            flows: flows.max(1),
            zipf_exponent: zipf,
            size_mix: SizeMix::internet_default(),
        },
    );
    if let Some(spec) = plant_spec {
        let parts: Vec<&str> = spec.split(',').collect();
        if parts.len() < 2 {
            return Err("--plant expects g,size[,unaligned]".into());
        }
        let g: usize = parts[0].parse()?;
        let size: usize = parts[1].parse()?;
        let unaligned = parts.get(2).is_some_and(|&m| m == "unaligned");
        let mut content_rng = rand::rngs::StdRng::seed_from_u64(content_seed);
        let object = ContentObject::random(&mut content_rng, g * size);
        let planting = if unaligned {
            Planting::unaligned(object, size)
        } else {
            Planting::aligned(object, size)
        };
        planting.plant_into(&mut rng, &mut traffic);
        println!(
            "planted {g}x{size}B content ({})",
            if unaligned { "unaligned" } else { "aligned" }
        );
    }
    let mut w = TraceWriter::new(BufWriter::new(File::create(out)?))?;
    w.write_all_packets(&traffic)?;
    let n = w.count();
    w.finish()?.flush()?;
    println!("wrote {n} packets to {out}");
    Ok(())
}

fn collect(args: &[String]) -> CliResult {
    let mut args = args.to_vec();
    let router = parse_or(take_flag(&mut args, "--router"), 0usize)?;
    let seed = parse_or(take_flag(&mut args, "--seed"), 0u64)?;
    let bits = parse_or(take_flag(&mut args, "--bits"), 1usize << 20)?;
    let groups = parse_or(take_flag(&mut args, "--groups"), 32usize)?;
    let sketch_cap = parse_or(take_flag(&mut args, "--sketch-cap"), 0usize)?;
    let sketch_domain = take_flag(&mut args, "--sketch-domain").unwrap_or_else(|| "content".into());
    let config_file = take_flag(&mut args, "--config");
    let out = take_flag(&mut args, "--out");
    let [input] = args.as_slice() else {
        return Err("usage: collect <in.trace> [--router N] [--seed N] \
                    [--bits N] [--groups N] [--sketch-cap N] \
                    [--sketch-domain content|drdos|elephant] \
                    [--config monitor.json] [--out digest.json]"
            .into());
    };

    // A config file (as printed by `dcs-cli config`) overrides the
    // individual flags wholesale; the sketch flags still override the
    // file so a sidecar can be toggled per run.
    let mut cfg: MonitorConfig = match config_file {
        Some(path) => serde_json::from_str(&std::fs::read_to_string(path)?)?,
        None => MonitorConfig::small(seed, bits, groups),
    };
    if sketch_cap > 0 {
        cfg = cfg.with_sketch(sketch_spec(sketch_cap, &sketch_domain)?);
    }
    let mut point = MonitoringPoint::new(router, &cfg);
    let reader = TraceReader::new(BufReader::new(File::open(input)?))?;
    let mut count = 0u64;
    for pkt in reader {
        point.observe(&pkt?);
        count += 1;
    }
    let digest = point.finish_epoch();
    let json = serde_json::to_string(&digest)?;
    match out {
        Some(path) => {
            std::fs::write(&path, json)?;
            println!(
                "router {router}: {count} packets -> {} digest bytes -> {path}",
                digest.encoded_len()
            );
        }
        None => println!("{json}"),
    }
    Ok(())
}

fn analyze(args: &[String]) -> CliResult {
    let mut args = args.to_vec();
    let threshold = take_flag(&mut args, "--threshold")
        .map(|t| t.parse::<usize>())
        .transpose()?;
    let metrics_out = take_flag(&mut args, "--metrics-json");
    let no_sketch_seed = take_switch(&mut args, "--no-sketch-seed");
    if args.is_empty() {
        return Err("usage: analyze <digest.json>... [--threshold N] \
                    [--no-sketch-seed] [--metrics-json path]"
            .into());
    }
    let mut digests: Vec<RouterDigest> = Vec::new();
    for path in &args {
        let data = std::fs::read_to_string(path)?;
        digests.push(serde_json::from_str(&data)?);
    }
    let total_groups: usize = digests.iter().map(|d| d.unaligned.groups()).sum();
    let mut cfg = AnalysisConfig::for_groups(total_groups.max(2));
    cfg.search.n_prime = 4_000.min(digests[0].aligned.bitmap.len());
    if let Some(t) = threshold {
        cfg.component_threshold = Some(t);
    }
    if no_sketch_seed {
        cfg = cfg.with_sketch_seed(false);
    }
    let center = AnalysisCenter::new(cfg);
    let report = center.analyze_epoch(&digests)?;
    println!("{}", serde_json::to_string_pretty(&report)?);
    if let Some(path) = metrics_out {
        std::fs::write(&path, center.metrics().to_json_pretty() + "\n")?;
        eprintln!("wrote metrics snapshot to {path}");
    }
    Ok(())
}

fn demo() -> CliResult {
    // End-to-end round trip through temporary files: generate traces for
    // a small deployment (one infected majority), collect, analyse.
    let dir = std::env::temp_dir().join(format!("dcs-demo-{}", std::process::id()));
    std::fs::create_dir_all(&dir)?;
    println!("demo working directory: {}", dir.display());
    const ROUTERS: usize = 24;
    let mut digest_paths = Vec::new();
    for r in 0..ROUTERS {
        let trace = dir.join(format!("router{r}.trace"));
        let mut cmd = vec![
            trace.to_string_lossy().into_owned(),
            "--packets".into(),
            "4000".into(),
            "--seed".into(),
            format!("{r}"),
        ];
        if r < 18 {
            // A shared content seed puts the SAME object in all nine
            // infected traces (the backgrounds still differ by --seed).
            cmd.extend([
                "--plant".into(),
                "30,536".into(),
                "--content-seed".into(),
                "42".into(),
            ]);
        }
        gen_trace(&cmd)?;
        let digest = dir.join(format!("router{r}.json"));
        collect(&[
            trace.to_string_lossy().into_owned(),
            "--router".into(),
            format!("{r}"),
            "--seed".into(),
            "7".into(),
            "--bits".into(),
            "16384".into(),
            "--groups".into(),
            "4".into(),
            "--out".into(),
            digest.to_string_lossy().into_owned(),
        ])?;
        digest_paths.push(digest.to_string_lossy().into_owned());
    }
    analyze(&digest_paths)?;
    std::fs::remove_dir_all(&dir)?;
    Ok(())
}

fn print_default_config() -> CliResult {
    // A starting-point monitor configuration; edit and pass to
    // `collect --config`. The analysis centre derives its own settings
    // from the digests.
    let cfg = MonitorConfig::small(/*epoch_seed=*/ 0, 1 << 20, 32);
    println!("{}", serde_json::to_string_pretty(&cfg)?);
    Ok(())
}
